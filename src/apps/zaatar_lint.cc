// zaatar-lint: static analyzer for compiled constraint systems.
//
// Loads zlang programs (from files, a directory scan, and/or the built-in
// benchmark suite), compiles each one, and runs every analysis rule over the
// full pipeline: Ginger constraints, the Ginger->Zaatar transform, the R1CS,
// and the QAP encoding. Exits non-zero when any ERROR finding is reported,
// so CI can gate on it (scripts/ci.sh runs it after the plain build).
//
//   zaatar-lint                         # built-in suite (default)
//   zaatar-lint --suite --dir examples/zlang
//   zaatar-lint --field=220 prog.zl
//   zaatar-lint --werror --max-findings=50 ...

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/analysis/analyzer.h"
#include "src/apps/degenerate.h"
#include "src/apps/suite.h"
#include "src/compiler/compile.h"
#include "src/crypto/prg.h"
#include "src/field/fields.h"

namespace {

struct Options {
  bool suite = false;
  bool werror = false;
  size_t max_findings = 25;
  int field_bits = 128;
  std::vector<std::string> dirs;
  std::vector<std::string> files;
};

struct Totals {
  size_t programs = 0;
  size_t errors = 0;
  size_t warnings = 0;
};

void Report(const std::string& name, const zaatar::AnalysisReport& report,
            const Options& options, Totals* totals) {
  totals->programs++;
  totals->errors += report.NumErrors();
  totals->warnings += report.NumWarnings();
  if (report.Empty()) {
    std::printf("%-48s clean\n", name.c_str());
    return;
  }
  std::printf("%-48s %s\n", name.c_str(), report.Summary().c_str());
  report.Print(stdout, options.max_findings);
}

template <typename F>
void LintSource(const std::string& name, const std::string& source,
                const Options& options, Totals* totals) {
  zaatar::CompiledProgram<F> program;
  try {
    program = zaatar::CompileZlang<F>(source);
  } catch (const std::exception& e) {
    std::printf("%-48s COMPILE ERROR: %s\n", name.c_str(), e.what());
    totals->programs++;
    totals->errors++;
    return;
  }
  Report(name, zaatar::AnalyzeProgram(program), options, totals);
}

// The hand-built degenerate quadratic form (src/apps/degenerate.h) has no
// CompiledProgram wrapper; run the per-layer entry points directly.
void LintDegenerate(size_t m, const Options& options, Totals* totals) {
  zaatar::Prg prg(0xD0D0);
  auto d = zaatar::BuildDegenerateQuadForm<zaatar::F128>(m, prg);
  zaatar::AnalysisReport report = zaatar::AnalyzeSystem(d.ginger);
  auto t = zaatar::GingerToZaatar(d.ginger);
  zaatar::CheckTransform(d.ginger, t, &report);
  report.Merge(zaatar::AnalyzeR1cs(t.r1cs));
  zaatar::Qap<zaatar::F128> qap(t.r1cs);
  zaatar::CheckQapShape(qap, &report);
  Report("degenerate_quadform(m=" + std::to_string(m) + ")", report, options,
         totals);
}

void LintSuite(const Options& options, Totals* totals) {
  // Small instances: the analyses scale with the constraint count and the
  // rule set is size-independent, so CI stays fast.
  auto pam = zaatar::MakePamApp(4, 3);
  auto apsp = zaatar::MakeApspApp(3);
  auto fannkuch = zaatar::MakeFannkuchApp(3, 4, 8);
  auto lcs = zaatar::MakeLcsApp(6);
  auto matmul = zaatar::MakeMatMulApp(3);
  auto rootfind = zaatar::MakeRootFindApp(2, 4);
  LintSource<zaatar::F128>(pam.name, pam.source, options, totals);
  LintSource<zaatar::F128>(apsp.name, apsp.source, options, totals);
  LintSource<zaatar::F128>(fannkuch.name, fannkuch.source, options, totals);
  LintSource<zaatar::F128>(lcs.name, lcs.source, options, totals);
  LintSource<zaatar::F128>(matmul.name, matmul.source, options, totals);
  LintSource<zaatar::F220>(rootfind.name, rootfind.source, options, totals);
  LintDegenerate(4, options, totals);
}

bool LintFile(const std::string& path, const Options& options,
              Totals* totals) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "zaatar-lint: cannot read %s\n", path.c_str());
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  if (options.field_bits == 220) {
    LintSource<zaatar::F220>(path, buf.str(), options, totals);
  } else {
    LintSource<zaatar::F128>(path, buf.str(), options, totals);
  }
  return true;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: zaatar-lint [--suite] [--dir <path>] [--field=128|220]\n"
      "                   [--werror] [--max-findings=N] [file.zl ...]\n"
      "With no targets, the built-in benchmark suite is analyzed.\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; i++) {
    std::string arg = argv[i];
    if (arg == "--suite") {
      options.suite = true;
    } else if (arg == "--werror") {
      options.werror = true;
    } else if (arg == "--dir") {
      if (i + 1 >= argc) {
        return Usage();
      }
      options.dirs.push_back(argv[++i]);
    } else if (arg.rfind("--field=", 0) == 0) {
      options.field_bits = std::atoi(arg.c_str() + 8);
      if (options.field_bits != 128 && options.field_bits != 220) {
        return Usage();
      }
    } else if (arg.rfind("--max-findings=", 0) == 0) {
      options.max_findings =
          static_cast<size_t>(std::atol(arg.c_str() + 15));
    } else if (arg.rfind("--", 0) == 0) {
      return Usage();
    } else {
      options.files.push_back(arg);
    }
  }
  if (options.files.empty() && options.dirs.empty()) {
    options.suite = true;
  }

  Totals totals;
  if (options.suite) {
    LintSuite(options, &totals);
  }
  for (const std::string& dir : options.dirs) {
    std::error_code ec;
    std::vector<std::string> found;
    for (const auto& entry :
         std::filesystem::directory_iterator(dir, ec)) {
      if (entry.path().extension() == ".zl") {
        found.push_back(entry.path().string());
      }
    }
    if (ec) {
      std::fprintf(stderr, "zaatar-lint: cannot scan %s: %s\n", dir.c_str(),
                   ec.message().c_str());
      return 2;
    }
    std::sort(found.begin(), found.end());
    for (const std::string& path : found) {
      if (!LintFile(path, options, &totals)) {
        return 2;
      }
    }
  }
  for (const std::string& path : options.files) {
    if (!LintFile(path, options, &totals)) {
      return 2;
    }
  }

  std::printf("zaatar-lint: %zu program(s), %zu error(s), %zu warning(s)\n",
              totals.programs, totals.errors, totals.warnings);
  bool fail = totals.errors > 0 || (options.werror && totals.warnings > 0);
  return fail ? 1 : 0;
}
