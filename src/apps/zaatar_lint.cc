// zaatar-lint: static analyzer for compiled constraint systems.
//
// Loads zlang programs (from files, a directory scan, and/or the built-in
// benchmark suite), compiles each one, and runs every analysis rule over the
// full pipeline: Ginger constraints, the Ginger->Zaatar transform, the R1CS,
// and the QAP encoding. Exits non-zero when any ERROR finding is reported,
// so CI can gate on it (scripts/ci.sh runs it after the plain build).
//
// --prove additionally runs the symbolic equivalence checker on every
// program with source text (DESIGN.md §14): each gets a verdict on whether
// the compiled constraints accept exactly the relation the source computes,
// and non-proof verdicts surface as ZL021/ZL022 errors or a ZL023 warning.
//
// --json switches the report to a machine-readable stream: one JSON object
// on stdout with per-program findings (rule id, severity, source line,
// counterexample input vector) and totals.
//
//   zaatar-lint                         # built-in suite (default)
//   zaatar-lint --suite --dir examples/zlang --prove --werror
//   zaatar-lint --field=220 prog.zl
//   zaatar-lint --json --werror --max-findings=50 ...

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/analysis/analyzer.h"
#include "src/apps/degenerate.h"
#include "src/apps/suite.h"
#include "src/compiler/compile.h"
#include "src/crypto/prg.h"
#include "src/field/fields.h"

namespace {

struct Options {
  bool suite = false;
  bool werror = false;
  bool prove = false;
  bool json = false;
  size_t max_findings = 25;
  int field_bits = 128;
  std::vector<std::string> dirs;
  std::vector<std::string> files;
};

struct Totals {
  size_t programs = 0;
  size_t errors = 0;
  size_t warnings = 0;
  std::vector<std::string> json_entries;
};

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string FindingToJson(const zaatar::Finding& f) {
  std::string s = "{";
  s += "\"rule\":\"" + JsonEscape(f.rule_id) + "\",";
  s += "\"severity\":\"" +
       std::string(zaatar::SeverityName(f.severity)) + "\",";
  s += "\"layer\":\"" + std::string(zaatar::LayerName(f.location.layer)) +
       "\",";
  s += "\"constraint\":" + std::to_string(f.location.constraint) + ",";
  s += "\"variable\":" + std::to_string(f.location.variable) + ",";
  s += "\"line\":" + std::to_string(f.location.source_line) + ",";
  s += "\"message\":\"" + JsonEscape(f.message) + "\",";
  s += "\"counterexample\":[";
  for (size_t i = 0; i < f.counterexample.size(); i++) {
    s += (i != 0 ? "," : "");
    s += "\"" + JsonEscape(f.counterexample[i]) + "\"";
  }
  s += "],";
  s += "\"note\":\"" + JsonEscape(f.counterexample_note) + "\"";
  s += "}";
  return s;
}

void Report(const std::string& name, const zaatar::AnalysisReport& report,
            const zaatar::EquivResult* equiv, const Options& options,
            Totals* totals) {
  totals->programs++;
  totals->errors += report.NumErrors();
  totals->warnings += report.NumWarnings();
  if (options.json) {
    std::string s = "{\"name\":\"" + JsonEscape(name) + "\",";
    s += "\"errors\":" + std::to_string(report.NumErrors()) + ",";
    s += "\"warnings\":" + std::to_string(report.NumWarnings()) + ",";
    if (equiv != nullptr) {
      s += "\"equivalence\":{\"status\":\"" +
           JsonEscape(zaatar::EquivStatusName(equiv->status)) +
           "\",\"proof\":" +
           (zaatar::EquivStatusIsProof(equiv->status) ? "true" : "false") +
           ",\"detail\":\"" + JsonEscape(equiv->detail) + "\"},";
    }
    s += "\"findings\":[";
    const auto& fs = report.findings();
    for (size_t i = 0; i < fs.size(); i++) {
      s += (i != 0 ? "," : "");
      s += FindingToJson(fs[i]);
    }
    s += "]}";
    totals->json_entries.push_back(std::move(s));
    return;
  }
  if (equiv != nullptr) {
    std::printf("%-48s prove: %s\n", name.c_str(),
                zaatar::EquivStatusName(equiv->status));
    if (!zaatar::EquivStatusIsProof(equiv->status)) {
      std::printf("  %s\n", equiv->detail.c_str());
    }
  }
  if (report.Empty()) {
    if (equiv == nullptr) {
      std::printf("%-48s clean\n", name.c_str());
    }
    return;
  }
  if (equiv == nullptr) {
    std::printf("%-48s %s\n", name.c_str(), report.Summary().c_str());
  }
  report.Print(stdout, options.max_findings);
}

template <typename F>
void LintSource(const std::string& name, const std::string& source,
                const Options& options, Totals* totals) {
  zaatar::AnalyzeOptions analyze;
  analyze.equivalence = options.prove;
  zaatar::EquivResult equiv;
  zaatar::AnalysisReport report;
  try {
    report = zaatar::AnalyzeSource<F>(source, analyze,
                                      options.prove ? &equiv : nullptr);
  } catch (const std::exception& e) {
    if (options.json) {
      totals->json_entries.push_back(
          "{\"name\":\"" + JsonEscape(name) + "\",\"errors\":1,"
          "\"warnings\":0,\"compile_error\":\"" + JsonEscape(e.what()) +
          "\",\"findings\":[]}");
    } else {
      std::printf("%-48s COMPILE ERROR: %s\n", name.c_str(), e.what());
    }
    totals->programs++;
    totals->errors++;
    return;
  }
  Report(name, report, options.prove ? &equiv : nullptr, options, totals);
}

// The hand-built degenerate quadratic form (src/apps/degenerate.h) has no
// zlang source, so the equivalence checker does not apply; run the
// per-layer entry points directly.
void LintDegenerate(size_t m, const Options& options, Totals* totals) {
  zaatar::Prg prg(0xD0D0);
  auto d = zaatar::BuildDegenerateQuadForm<zaatar::F128>(m, prg);
  zaatar::AnalysisReport report = zaatar::AnalyzeSystem(d.ginger);
  auto t = zaatar::GingerToZaatar(d.ginger);
  zaatar::CheckTransform(d.ginger, t, &report);
  report.Merge(zaatar::AnalyzeR1cs(t.r1cs));
  zaatar::Qap<zaatar::F128> qap(t.r1cs);
  zaatar::CheckQapShape(qap, &report);
  Report("degenerate_quadform(m=" + std::to_string(m) + ")", report, nullptr,
         options, totals);
}

void LintSuite(const Options& options, Totals* totals) {
  // Small instances: the analyses scale with the constraint count and the
  // rule set is size-independent, so CI stays fast.
  auto pam = zaatar::MakePamApp(4, 3);
  auto apsp = zaatar::MakeApspApp(3);
  auto fannkuch = zaatar::MakeFannkuchApp(3, 4, 8);
  auto lcs = zaatar::MakeLcsApp(6);
  auto matmul = zaatar::MakeMatMulApp(3);
  auto rootfind = zaatar::MakeRootFindApp(2, 4);
  LintSource<zaatar::F128>(pam.name, pam.source, options, totals);
  LintSource<zaatar::F128>(apsp.name, apsp.source, options, totals);
  LintSource<zaatar::F128>(fannkuch.name, fannkuch.source, options, totals);
  LintSource<zaatar::F128>(lcs.name, lcs.source, options, totals);
  LintSource<zaatar::F128>(matmul.name, matmul.source, options, totals);
  LintSource<zaatar::F220>(rootfind.name, rootfind.source, options, totals);
  LintDegenerate(4, options, totals);
}

bool LintFile(const std::string& path, const Options& options,
              Totals* totals) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "zaatar-lint: cannot read %s\n", path.c_str());
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  if (options.field_bits == 220) {
    LintSource<zaatar::F220>(path, buf.str(), options, totals);
  } else {
    LintSource<zaatar::F128>(path, buf.str(), options, totals);
  }
  return true;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: zaatar-lint [--suite] [--dir <path>] [--field=128|220]\n"
      "                   [--prove] [--json] [--werror]\n"
      "                   [--max-findings=N] [file.zl ...]\n"
      "With no targets, the built-in benchmark suite is analyzed.\n"
      "--prove runs the symbolic equivalence checker per program;\n"
      "--json emits one machine-readable JSON object on stdout.\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; i++) {
    std::string arg = argv[i];
    if (arg == "--suite") {
      options.suite = true;
    } else if (arg == "--werror") {
      options.werror = true;
    } else if (arg == "--prove") {
      options.prove = true;
    } else if (arg == "--json") {
      options.json = true;
    } else if (arg == "--dir") {
      if (i + 1 >= argc) {
        return Usage();
      }
      options.dirs.push_back(argv[++i]);
    } else if (arg.rfind("--field=", 0) == 0) {
      options.field_bits = std::atoi(arg.c_str() + 8);
      if (options.field_bits != 128 && options.field_bits != 220) {
        return Usage();
      }
    } else if (arg.rfind("--max-findings=", 0) == 0) {
      options.max_findings =
          static_cast<size_t>(std::atol(arg.c_str() + 15));
    } else if (arg.rfind("--", 0) == 0) {
      return Usage();
    } else {
      options.files.push_back(arg);
    }
  }
  if (options.files.empty() && options.dirs.empty()) {
    options.suite = true;
  }

  Totals totals;
  if (options.suite) {
    LintSuite(options, &totals);
  }
  for (const std::string& dir : options.dirs) {
    std::error_code ec;
    std::vector<std::string> found;
    for (const auto& entry :
         std::filesystem::directory_iterator(dir, ec)) {
      if (entry.path().extension() == ".zl") {
        found.push_back(entry.path().string());
      }
    }
    if (ec) {
      std::fprintf(stderr, "zaatar-lint: cannot scan %s: %s\n", dir.c_str(),
                   ec.message().c_str());
      return 2;
    }
    std::sort(found.begin(), found.end());
    for (const std::string& path : found) {
      if (!LintFile(path, options, &totals)) {
        return 2;
      }
    }
  }
  for (const std::string& path : options.files) {
    if (!LintFile(path, options, &totals)) {
      return 2;
    }
  }

  if (options.json) {
    std::printf("{\"programs\":[");
    for (size_t i = 0; i < totals.json_entries.size(); i++) {
      std::printf("%s%s", i != 0 ? "," : "", totals.json_entries[i].c_str());
    }
    std::printf("],\"totals\":{\"programs\":%zu,\"errors\":%zu,"
                "\"warnings\":%zu}}\n",
                totals.programs, totals.errors, totals.warnings);
  } else {
    std::printf("zaatar-lint: %zu program(s), %zu error(s), %zu warning(s)\n",
                totals.programs, totals.errors, totals.warnings);
  }
  bool fail = totals.errors > 0 || (options.werror && totals.warnings > 0);
  return fail ? 1 : 0;
}
