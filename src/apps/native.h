// Native (uncompiled) reference implementations of the five benchmark
// computations. These serve two purposes:
//   1. correctness oracles — each must match the compiled circuit's outputs
//      bit-for-bit on random inputs (tests/apps_test.cc), which pins down
//      the zlang programs' exact semantics (tie-breaking, bounded loops,
//      fixed-point rounding);
//   2. the "local computation" baseline of Figures 5 and 7 (executed with
//      native machine arithmetic, standing in for the paper's GMP runs).

#ifndef SRC_APPS_NATIVE_H_
#define SRC_APPS_NATIVE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace zaatar {

struct PamResult {
  int64_t total_cost = 0;
  int64_t medoid0 = 0;
  int64_t medoid1 = 0;
};

// x is row-major m x d. Mirrors PamSource exactly (2 clusters, `iters`
// swap iterations, strict-< argmin tie-breaking, 2^62 sentinel).
PamResult NativePam(const std::vector<int64_t>& x, size_t m, size_t d,
                    size_t iters);

struct RootFindResult {
  __int128 root_num = 0;
  __int128 root_den = 0;
};

// a row-major m x m. Mirrors RootFindSource (dyadic interval state).
RootFindResult NativeRootFind(const std::vector<int64_t>& a,
                              const std::vector<int64_t>& b,
                              const std::vector<int64_t>& c, int64_t nlo0,
                              int64_t nhi0, size_t m, size_t l);

// Edge weights as (num, den) pairs, row-major m x m, dens positive.
// Returns the fixed-point (2^-16) numerator of the sum of row-0 distances,
// mirroring ApspSource's floor-rounding semantics.
int64_t NativeApsp(const std::vector<int64_t>& w_num,
                   const std::vector<int64_t>& w_den, size_t m);

struct FannkuchResult {
  int64_t total_flips = 0;
  int64_t max_flips = 0;
};

// perms row-major m x n, each row a permutation of 1..n.
FannkuchResult NativeFannkuch(const std::vector<int64_t>& perms, size_t m,
                              size_t n, size_t max_steps);

int64_t NativeLcs(const std::vector<int64_t>& s,
                  const std::vector<int64_t>& t);

// Row-major m x m product c = a * b.
std::vector<int64_t> NativeMatMul(const std::vector<int64_t>& a,
                                  const std::vector<int64_t>& b, size_t m);

}  // namespace zaatar

#endif  // SRC_APPS_NATIVE_H_
