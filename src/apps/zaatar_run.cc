// zaatar-run: drive one benchmark app through the full batched argument and
// report the per-phase costs, verdicts, and (optionally) the observability
// export. This is the command-line face of the tracing layer: pass
// --trace <path> to dump the run's span tree + metrics as JSON.
//
//   zaatar-run --app lcs --size 8 --beta 4 --seed 7 --trace trace.json
//
// Apps: lcs, matmul, apsp, fannkuch, pam (F128) and root_finding (F220).
// --backend ginger selects the quadratic baseline (small sizes only).

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "src/apps/harness.h"
#include "src/apps/suite.h"
#include "src/field/fields.h"
#include "src/obs/export.h"
#include "src/pcp/params.h"

namespace {

struct Options {
  std::string app = "lcs";
  size_t size = 6;
  size_t beta = 2;
  uint64_t seed = 1;
  std::string backend = "zaatar";
  std::string trace_path;  // empty = no export
  bool measure_native = false;
  bool paper_params = false;  // default: PcpParams::Light() (fast smoke)
  // Failure hardening (0 = wait forever / never retry, the historical
  // behavior): per-Receive deadline and reconnect budget for the verifier.
  uint64_t recv_timeout_ms = 0;
  uint32_t max_retries = 0;
};

void Usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0
      << " [--app lcs|matmul|apsp|fannkuch|pam|root_finding] [--size N]\n"
      << "       [--beta N] [--seed S] [--backend zaatar|ginger]\n"
      << "       [--trace PATH] [--measure-native] [--paper-params]\n"
      << "       [--recv-timeout-ms N] [--max-retries N]\n";
}

bool ParseArgs(int argc, char** argv, Options* opt) {
  for (int i = 1; i < argc; i++) {
    std::string a = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (a == "--app") {
      const char* v = next();
      if (v == nullptr) return false;
      opt->app = v;
    } else if (a == "--size") {
      const char* v = next();
      if (v == nullptr) return false;
      opt->size = static_cast<size_t>(std::strtoull(v, nullptr, 10));
    } else if (a == "--beta") {
      const char* v = next();
      if (v == nullptr) return false;
      opt->beta = static_cast<size_t>(std::strtoull(v, nullptr, 10));
    } else if (a == "--seed") {
      const char* v = next();
      if (v == nullptr) return false;
      opt->seed = std::strtoull(v, nullptr, 10);
    } else if (a == "--backend") {
      const char* v = next();
      if (v == nullptr) return false;
      opt->backend = v;
    } else if (a == "--trace") {
      const char* v = next();
      if (v == nullptr) return false;
      opt->trace_path = v;
    } else if (a == "--recv-timeout-ms") {
      const char* v = next();
      if (v == nullptr) return false;
      opt->recv_timeout_ms = std::strtoull(v, nullptr, 10);
    } else if (a == "--max-retries") {
      const char* v = next();
      if (v == nullptr) return false;
      opt->max_retries =
          static_cast<uint32_t>(std::strtoull(v, nullptr, 10));
    } else if (a == "--measure-native") {
      opt->measure_native = true;
    } else if (a == "--paper-params") {
      opt->paper_params = true;
    } else {
      std::cerr << "unknown flag: " << a << "\n";
      return false;
    }
  }
  if (opt->beta == 0 || opt->size == 0) {
    std::cerr << "--beta and --size must be positive\n";
    return false;
  }
  if (opt->backend != "zaatar" && opt->backend != "ginger") {
    std::cerr << "--backend must be zaatar or ginger\n";
    return false;
  }
  return true;
}

template <typename F>
int RunApp(const zaatar::App<F>& app, const Options& opt) {
  using namespace zaatar;
  CompiledProgram<F> program = CompileZlang<F>(app.source);
  PcpParams params =
      opt.paper_params ? PcpParams{} : PcpParams::Light();

  MeasureOptions mopt;
  mopt.measure_native = opt.measure_native;
  mopt.transport.recv_deadline =
      std::chrono::milliseconds(opt.recv_timeout_ms);
  mopt.transport.handshake_deadline =
      std::chrono::milliseconds(opt.recv_timeout_ms);
  mopt.backoff.max_retries = opt.max_retries;
  mopt.backoff.jitter_seed = opt.seed;

  BatchMeasurement m;
  if (opt.backend == "ginger") {
    m = MeasureGingerBatch(app, program, opt.beta, params, opt.seed, mopt);
  } else {
    m = MeasureZaatarBatch(app, program, opt.beta, params, opt.seed, mopt);
  }

  std::printf("app                    %s\n", app.name.c_str());
  std::printf("backend                %s\n", opt.backend.c_str());
  std::printf("beta                   %zu\n", opt.beta);
  std::printf("constraints (zaatar)   %zu\n", m.stats.c_zaatar);
  std::printf("proof length           %zu\n", m.proof_len);
  std::printf("total queries          %zu\n", m.total_queries);
  std::printf("query generation       %.6f s\n", m.query_generation_s);
  std::printf("commit setup           %.6f s\n", m.commit_setup_s);
  std::printf("prover solve           %.6f s/inst\n",
              m.prover.solve_constraints_s);
  std::printf("prover construct       %.6f s/inst\n",
              m.prover.construct_proof_s);
  std::printf("prover commit          %.6f s/inst\n", m.prover.crypto_s);
  std::printf("prover answer          %.6f s/inst\n",
              m.prover.answer_queries_s);
  std::printf("verifier per instance  %.6f s\n", m.verifier_per_instance_s);
  std::printf("setup message          %zu bytes\n", m.setup_message_bytes);
  std::printf("proof messages         %zu bytes\n", m.proof_message_bytes);
  std::printf("transport retries      %zu\n", m.transport_retries);
  std::printf("transport connections  %zu\n", m.transport_connections);
  std::printf("all accepted           %s\n", m.all_accepted ? "yes" : "no");

  if (!opt.trace_path.empty()) {
    std::string json = obs::ExportJson(m.trace.get(), m.metrics.get());
    std::ofstream out(opt.trace_path, std::ios::binary);
    if (!out) {
      std::cerr << "cannot open trace file: " << opt.trace_path << "\n";
      return 1;
    }
    out << json;
    std::printf("trace                  %s (%zu bytes)\n",
                opt.trace_path.c_str(), json.size());
  }
  return m.all_accepted ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!ParseArgs(argc, argv, &opt)) {
    Usage(argv[0]);
    return 1;
  }
  try {
    if (opt.app == "lcs") {
      return RunApp(zaatar::MakeLcsApp(opt.size), opt);
    } else if (opt.app == "matmul") {
      return RunApp(zaatar::MakeMatMulApp(opt.size), opt);
    } else if (opt.app == "apsp") {
      return RunApp(zaatar::MakeApspApp(opt.size), opt);
    } else if (opt.app == "fannkuch") {
      return RunApp(zaatar::MakeFannkuchApp(2, opt.size, opt.size), opt);
    } else if (opt.app == "pam") {
      return RunApp(zaatar::MakePamApp(opt.size, 2), opt);
    } else if (opt.app == "root_finding") {
      return RunApp(zaatar::MakeRootFindApp(opt.size, 4), opt);
    }
    std::cerr << "unknown app: " << opt.app << "\n";
    Usage(argv[0]);
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
