// zlang sources for the paper's five benchmark computations (§5.1):
//   (a) PAM clustering          (b) root finding by bisection
//   (c) Floyd-Warshall APSP     (d) Fannkuch                (e) LCS
//
// Each generator is parameterized by the input-size knobs the paper sweeps
// (m, d, L, ...). Width choices mirror §5.1: integer benchmarks use 32-bit
// inputs over the 128-bit field; root finding's interval arithmetic grows
// ~2 bits per iteration and needs the 220-bit field (exactly the paper's
// field-size split). Floyd-Warshall uses rational weights with fixed-point
// (2^-16) rounding on assignment — zlang's realization of Ginger's primitive
// floating-point (see src/compiler/evaluator.h).

#ifndef SRC_APPS_PROGRAMS_H_
#define SRC_APPS_PROGRAMS_H_

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace zaatar {

namespace apps_internal {

// Replaces each "$KEY" in tmpl using the (key, value) list.
std::string Subst(
    const char* tmpl,
    const std::vector<std::pair<std::string, size_t>>& subs);

}  // namespace apps_internal

// (a) Partitioning Around Medoids, k = 2 clusters, `iters` swap iterations.
// O(m^2 d) work dominated by the pairwise distance matrix.
std::string PamSource(size_t m, size_t d, size_t iters = 2);

// (b) Root finding by bisection over a dense m-variable quadratic form
// f(t) = sum_ij a_ij u_i(t) u_j(t), u_i(t) = b_i + t c_i, L iterations.
// Interval state is kept as exact dyadic rationals (n_lo/den, n_hi/den), so
// widths grow ~2 bits per iteration: the O(m^2 L) benchmark that needs the
// 220-bit field.
std::string RootFindSource(size_t m, size_t l);

// (c) Floyd-Warshall all-pairs shortest paths on a complete graph with
// rational edge weights; distances are fixed-point rational<48,16>. O(m^3).
std::string ApspSource(size_t m);

// (d) Fannkuch: for each of m permutations of {1..n}, count prefix
// reversals until a 1 leads, bounded by max_steps. Exercises data-dependent
// array reads and writes (mux chains).
std::string FannkuchSource(size_t m, size_t n, size_t max_steps);

// (e) Longest common subsequence length between two strings of length m,
// classic O(m^2) DP with per-cell equality + max gadgets.
std::string LcsSource(size_t m);

// (f, extension) m x m integer matrix multiplication — the computation
// Ginger hand-tailored a protocol for; here it goes through the general
// compiler like everything else. O(m^3) multiplications, m^2 outputs.
std::string MatMulSource(size_t m);

}  // namespace zaatar

#endif  // SRC_APPS_PROGRAMS_H_
