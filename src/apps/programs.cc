#include "src/apps/programs.h"

#include <utility>
#include <vector>

namespace zaatar {

namespace apps_internal {

std::string Subst(
    const char* tmpl,
    const std::vector<std::pair<std::string, size_t>>& subs) {
  std::string out = tmpl;
  for (const auto& [key, value] : subs) {
    std::string token = "$" + key;
    std::string repl = std::to_string(value);
    size_t pos = 0;
    while ((pos = out.find(token, pos)) != std::string::npos) {
      out.replace(pos, token.size(), repl);
      pos += repl.size();
    }
  }
  return out;
}

}  // namespace apps_internal

std::string PamSource(size_t m, size_t d, size_t iters) {
  static const char* kTemplate = R"(
program pam;
const M = $M;
const D = $D;
const ITERS = $ITERS;
const BIG = 4611686018427387904;  // 2^62 sentinel for argmin

input int32 x[M][D];
output int<80> total_cost;
output int32 medoid0;
output int32 medoid1;

var int<80> dist[M][M];
var int<80> s;
var int<40> df;
var int32 m0;
var int32 m1;
var int<80> dm0;
var int<80> dm1;
var bool near0[M];
var int<90> best;
var int32 bestidx;
var int<90> cand;
var int<90> acc;

// Pairwise squared Euclidean distances: the O(m^2 d) core.
for i in 0..M-1 {
  for j in 0..M-1 { dist[i][j] = 0; }
}
for i in 0..M-1 {
  for j in i+1..M-1 {
    s = 0;
    for t in 0..D-1 {
      df = x[i][t] - x[j][t];
      s = s + df * df;
    }
    dist[i][j] = s;
    dist[j][i] = s;
  }
}

m0 = 0;
m1 = 1;
for it in 1..ITERS {
  // Assign each point to the nearer medoid (medoid indices are runtime
  // values, so reading dist[p][m0] costs a selector sweep).
  for p in 0..M-1 {
    dm0 = 0;
    dm1 = 0;
    for q in 0..M-1 {
      if (m0 == q) { dm0 = dist[p][q]; }
      if (m1 == q) { dm1 = dist[p][q]; }
    }
    near0[p] = dm0 <= dm1;
  }
  // New medoid of cluster 0: member minimizing total in-cluster distance.
  best = BIG;
  bestidx = m0;
  for i in 0..M-1 {
    acc = 0;
    for j in 0..M-1 { acc = acc + (near0[j] ? dist[i][j] : 0); }
    cand = near0[i] ? acc : BIG;
    if (cand < best) { best = cand; bestidx = i; }
  }
  m0 = bestidx;
  // New medoid of cluster 1.
  best = BIG;
  bestidx = m1;
  for i in 0..M-1 {
    acc = 0;
    for j in 0..M-1 { acc = acc + (near0[j] ? 0 : dist[i][j]); }
    cand = near0[i] ? BIG : acc;
    if (cand < best) { best = cand; bestidx = i; }
  }
  m1 = bestidx;
}

// Total assignment cost under the final medoids.
acc = 0;
for p in 0..M-1 {
  dm0 = 0;
  dm1 = 0;
  for q in 0..M-1 {
    if (m0 == q) { dm0 = dist[p][q]; }
    if (m1 == q) { dm1 = dist[p][q]; }
  }
  acc = acc + min(dm0, dm1);
}
total_cost = acc;
medoid0 = m0;
medoid1 = m1;
)";
  return apps_internal::Subst(kTemplate,
                              {{"M", m}, {"D", d}, {"ITERS", iters}});
}

std::string RootFindSource(size_t m, size_t l) {
  static const char* kTemplate = R"(
program rootfind;
const M = $M;
const L = $L;

input int32 a[M][M];
input int32 b[M];
input int32 c[M];
input int32 nlo0;   // initial interval [nlo0, nhi0] with denominator 1
input int32 nhi0;
output int<64> root_num;
output int<64> root_den;

// Interval state as dyadic rationals over a shared denominator `den`, which
// doubles each iteration (so widths grow linearly in L).
var int<60> nlo;
var int<60> nhi;
var int<60> den;
var int<60> nmid;
var int<60> dmid;
var int<120> unum[M];
var int<200> fnum;
var int<200> term;

nlo = nlo0;
nhi = nhi0;
den = 1;
for it in 1..L {
  nmid = nlo + nhi;
  dmid = den * 2;
  // u_i = b_i + mid * c_i, as a numerator over dmid.
  for i in 0..M-1 {
    unum[i] = b[i] * dmid + nmid * c[i];
  }
  // sign(f(mid)) = sign(sum_ij a_ij u_i u_j)  (denominator positive).
  fnum = 0;
  for i in 0..M-1 {
    for j in 0..M-1 {
      term = unum[i] * unum[j];
      fnum = fnum + a[i][j] * term;
    }
  }
  if (fnum < 0) {
    nlo = nmid;
    nhi = nhi * 2;
  } else {
    nhi = nmid;
    nlo = nlo * 2;
  }
  den = dmid;
}
root_num = nlo + nhi;
root_den = den * 2;
)";
  return apps_internal::Subst(kTemplate, {{"M", m}, {"L", l}});
}

std::string ApspSource(size_t m) {
  static const char* kTemplate = R"(
program apsp;
const M = $M;

// Positive rational edge weights (runtime numerator/denominator pairs).
input rational<16, 10> w[M][M];
// Sum of the shortest-path distances out of vertex 0.
output rational<56, 16> dsum;

// Distances are fixed-point with 16 fractional bits; every assignment
// rounds (floor) to that grid, which bounds widths across the m^3 chained
// relaxations.
var rational<48, 16> d[M][M];
var rational<56, 16> acc;

for i in 0..M-1 {
  for j in 0..M-1 {
    d[i][j] = w[i][j];
  }
}
for k in 0..M-1 {
  for i in 0..M-1 {
    for j in 0..M-1 {
      d[i][j] = min(d[i][j], d[i][k] + d[k][j]);
    }
  }
}
acc = 0;
for j in 0..M-1 {
  acc = acc + d[0][j];
}
dsum = acc;
)";
  return apps_internal::Subst(kTemplate, {{"M", m}});
}

std::string FannkuchSource(size_t m, size_t n, size_t max_steps) {
  static const char* kTemplate = R"(
program fannkuch;
const M = $M;
const N = $N;
const STEPS = $STEPS;

input int32 perm[M][N];   // each row: a permutation of 1..N
output int32 total_flips;
output int32 max_flips;

var int32 p[N];
var int32 tmp[N];
var int32 flips;
var int32 k;
var bool done;
var int32 total;
var int32 maxf;

total = 0;
maxf = 0;
for pi in 0..M-1 {
  for i in 0..N-1 { p[i] = perm[pi][i]; }
  flips = 0;
  done = false;
  for step in 1..STEPS {
    k = p[0];
    if (k == 1) { done = true; }
    if (!done) {
      flips = flips + 1;
      // Reverse the prefix of (runtime) length k: data-dependent reads.
      for i in 0..N-1 { tmp[i] = p[i]; }
      for i in 0..N-1 {
        if (i < k) { p[i] = tmp[k - 1 - i]; }
      }
    }
  }
  total = total + flips;
  if (maxf < flips) { maxf = flips; }
}
total_flips = total;
max_flips = maxf;
)";
  return apps_internal::Subst(
      kTemplate, {{"M", m}, {"N", n}, {"STEPS", max_steps}});
}

std::string LcsSource(size_t m) {
  static const char* kTemplate = R"(
program lcs;
const M = $M;

input int32 s[M];
input int32 t[M];
output int32 lcs_len;

var int32 dp[M + 1][M + 1];

for i in 0..M { dp[i][0] = 0; }
for j in 0..M { dp[0][j] = 0; }
for i in 1..M {
  for j in 1..M {
    dp[i][j] = (s[i - 1] == t[j - 1])
                   ? (dp[i - 1][j - 1] + 1)
                   : max(dp[i - 1][j], dp[i][j - 1]);
  }
}
lcs_len = dp[M][M];
)";
  return apps_internal::Subst(kTemplate, {{"M", m}});
}

std::string MatMulSource(size_t m) {
  static const char* kTemplate = R"(
program matmul;
const M = $M;

input int32 a[M][M];
input int32 b[M][M];
output int<72> c[M][M];

var int<72> s;
for i in 0..M-1 {
  for j in 0..M-1 {
    s = 0;
    for k in 0..M-1 {
      s = s + a[i][k] * b[k][j];
    }
    c[i][j] = s;
  }
}
)";
  return apps_internal::Subst(kTemplate, {{"M", m}});
}

}  // namespace zaatar
