// Linear proof oracles.
//
// A linear PCP proof is conceptually a linear function pi: F^n -> F; the
// prover realizes it as a vector u with pi(q) = <q, u>. The verifier-side
// code only sees the LinearOracle interface, so tests can substitute
// adversarial (non-linear or wrong-vector) oracles to exercise soundness.

#ifndef SRC_PCP_LINEAR_ORACLE_H_
#define SRC_PCP_LINEAR_ORACLE_H_

#include <cassert>
#include <cstddef>
#include <utility>
#include <vector>

namespace zaatar {

template <typename F>
class LinearOracle {
 public:
  virtual ~LinearOracle() = default;

  // Dimension of the query space.
  virtual size_t Size() const = 0;

  // Answers one query (query.size() == Size()).
  virtual F Query(const std::vector<F>& query) const = 0;

  std::vector<F> QueryAll(const std::vector<std::vector<F>>& queries) const {
    std::vector<F> out;
    out.reserve(queries.size());
    for (const auto& q : queries) {
      out.push_back(Query(q));
    }
    return out;
  }
};

// The honest oracle: pi(q) = <q, u>.
template <typename F>
class VectorOracle : public LinearOracle<F> {
 public:
  explicit VectorOracle(std::vector<F> u) : u_(std::move(u)) {}

  size_t Size() const override { return u_.size(); }

  F Query(const std::vector<F>& query) const override {
    assert(query.size() == u_.size());
    return InnerProduct(query.data(), u_.data(), u_.size());
  }

  const std::vector<F>& vector() const { return u_; }

  static F InnerProduct(const F* a, const F* b, size_t n) {
    F acc = F::Zero();
    for (size_t i = 0; i < n; i++) {
      acc += a[i] * b[i];
    }
    return acc;
  }

 private:
  std::vector<F> u_;
};

}  // namespace zaatar

#endif  // SRC_PCP_LINEAR_ORACLE_H_
