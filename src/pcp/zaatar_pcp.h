// Zaatar's QAP-based linear PCP (paper Figure 10 / Appendix A).
//
// Proof oracles: pi_z (the satisfying assignment restricted to the unbound
// variables, length n') and pi_h (the coefficients of H(t) = P_w(t)/D(t),
// length |C|+1).
//
// Per repetition the verifier issues rho_lin linearity triples to each
// oracle, then divisibility-correction queries q_a, q_b, q_c (to pi_z) and
// q_d = (1, tau, .., tau^|C|) (to pi_h), each blinded by the first linearity
// query of the corresponding oracle (self-correction). The decision check is
//     D(tau) · (pi(q4) - pi(q8)) = A_tau · B_tau - C_tau
// with A_tau = pi(q1) - pi(q5) + sum_{bound i} w_i A_i(tau) + A_0(tau), etc.

#ifndef SRC_PCP_ZAATAR_PCP_H_
#define SRC_PCP_ZAATAR_PCP_H_

#include <cassert>
#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "src/constraints/qap.h"
#include "src/crypto/prg.h"
#include "src/pcp/linear_oracle.h"
#include "src/pcp/params.h"
#include "src/util/status.h"

namespace zaatar {

// The honest prover's proof vectors.
template <typename F>
struct ZaatarProof {
  std::vector<F> z;  // length n'
  std::vector<F> h;  // length |C|+1
};

// Builds (z, h) from a full assignment (Z then X then Y). For a satisfying
// assignment the result is a valid proof; for any other assignment it is the
// "best-effort cheat" (H is the polynomial quotient), which the PCP rejects
// with high probability — tests rely on this.
//
// ComputeH runs the residue-domain NTT pipeline (src/poly/residue.h): the
// quotient is produced without leaving CRT evaluation form between
// interpolation and division, and is bit-identical to the frozen
// coefficient-form path (Qap::ComputeHNaive) — including the non-exact
// cheating case, where both return the truncated polynomial quotient.
template <typename F>
ZaatarProof<F> BuildZaatarProof(const Qap<F>& qap,
                                const std::vector<F>& assignment) {
  const auto& layout = qap.constraint_system().layout;
  assert(assignment.size() == layout.Total());
  ZaatarProof<F> proof;
  proof.z.assign(assignment.begin(), assignment.begin() + layout.num_unbound);
  proof.h = qap.ComputeH(assignment).h;
  return proof;
}

template <typename F>
class ZaatarPcp {
 public:
  struct LinTriple {
    size_t i0, i1, i2;  // query indices with expected resp[i0]+resp[i1]=resp[i2]
  };

  struct Repetition {
    std::vector<LinTriple> lin_z, lin_h;
    size_t qa = 0, qb = 0, qc = 0;  // z-oracle indices (blinded)
    size_t qd = 0;                  // h-oracle index (blinded)
    size_t blind_z = 0, blind_h = 0;
    F d_tau;
    F tau;
    // Verifier-side evaluation rows: [0] is the constant row; [1+k] is the
    // row of bound variable k (inputs then outputs, in layout order).
    std::vector<F> a_bound, b_bound, c_bound;
  };

  struct Queries {
    std::vector<std::vector<F>> z_queries;
    std::vector<std::vector<F>> h_queries;
    std::vector<Repetition> reps;
    size_t z_len = 0;
    size_t h_len = 0;

    size_t TotalQueryCount() const {
      return z_queries.size() + h_queries.size();
    }
  };

  // Amortized over a batch: generated once per (computation, batch).
  static Queries GenerateQueries(const Qap<F>& qap, const PcpParams& params,
                                 Prg& prg) {
    const auto& layout = qap.constraint_system().layout;
    const size_t n_unbound = layout.num_unbound;
    const size_t n_bound = layout.num_inputs + layout.num_outputs;
    const size_t m = qap.Degree();

    Queries out;
    out.z_len = n_unbound;
    out.h_len = m + 1;
    out.reps.reserve(params.rho);

    for (size_t rep = 0; rep < params.rho; rep++) {
      Repetition r;

      // Linearity queries.
      for (size_t k = 0; k < params.rho_lin; k++) {
        r.lin_z.push_back(
            PushLinearityTriple(&out.z_queries, n_unbound, prg));
        r.lin_h.push_back(PushLinearityTriple(&out.h_queries, m + 1, prg));
      }
      r.blind_z = r.lin_z[0].i0;
      r.blind_h = r.lin_h[0].i0;

      // Divisibility-correction queries at a fresh tau outside {0..m}.
      // SampleTau already rejects the interpolation set, but EvaluateAtTau
      // reports a collision as a typed error, so resample on it rather than
      // trusting the two range conventions to stay in sync.
      F tau = SampleTau(m, prg);
      auto ev_or = qap.EvaluateAtTau(tau);
      while (!ev_or.ok()) {
        tau = SampleTau(m, prg);
        ev_or = qap.EvaluateAtTau(tau);
      }
      const auto& ev = *ev_or;
      r.tau = tau;
      r.d_tau = ev.d_tau;

      auto slice_unbound = [&](const std::vector<F>& rows) {
        return std::vector<F>(rows.begin() + 1, rows.begin() + 1 + n_unbound);
      };
      auto slice_bound = [&](const std::vector<F>& rows) {
        std::vector<F> b(1 + n_bound);
        b[0] = rows[0];
        for (size_t k = 0; k < n_bound; k++) {
          b[1 + k] = rows[1 + n_unbound + k];
        }
        return b;
      };

      r.qa = PushBlinded(&out.z_queries, slice_unbound(ev.a_rows),
                         out.z_queries[r.blind_z]);
      r.qb = PushBlinded(&out.z_queries, slice_unbound(ev.b_rows),
                         out.z_queries[r.blind_z]);
      r.qc = PushBlinded(&out.z_queries, slice_unbound(ev.c_rows),
                         out.z_queries[r.blind_z]);
      r.a_bound = slice_bound(ev.a_rows);
      r.b_bound = slice_bound(ev.b_rows);
      r.c_bound = slice_bound(ev.c_rows);

      // q_d = (1, tau, .., tau^m), blinded.
      std::vector<F> qd(m + 1);
      F pw = F::One();
      for (size_t i = 0; i <= m; i++) {
        qd[i] = pw;
        pw *= tau;
      }
      r.qd = PushBlinded(&out.h_queries, qd, out.h_queries[r.blind_h]);

      out.reps.push_back(std::move(r));
    }
    return out;
  }

  // Verifier decision. `bound_values` are the instance's inputs followed by
  // outputs (layout order); responses are aligned with the query lists.
  // Response vectors can originate from wire-decoded bytes, so shape is
  // re-checked here in release builds too (a mismatch is a reject, never an
  // out-of-bounds read); ValidateResponseShape exposes the same check as a
  // typed Status for callers that want the error, not just `false`.
  static Status ValidateResponseShape(const Queries& queries,
                                      const std::vector<F>& z_resp,
                                      const std::vector<F>& h_resp) {
    if (z_resp.size() != queries.z_queries.size()) {
      return ShapeMismatchError(
          "z-oracle response count " + std::to_string(z_resp.size()) +
          " != query count " + std::to_string(queries.z_queries.size()));
    }
    if (h_resp.size() != queries.h_queries.size()) {
      return ShapeMismatchError(
          "h-oracle response count " + std::to_string(h_resp.size()) +
          " != query count " + std::to_string(queries.h_queries.size()));
    }
    return Status::Ok();
  }

  static bool Decide(const Queries& queries, const std::vector<F>& z_resp,
                     const std::vector<F>& h_resp,
                     const std::vector<F>& bound_values) {
    if (!ValidateResponseShape(queries, z_resp, h_resp).ok()) {
      return false;
    }
    for (const auto& rep : queries.reps) {
      if (rep.a_bound.size() != bound_values.size() + 1 ||
          rep.b_bound.size() != bound_values.size() + 1 ||
          rep.c_bound.size() != bound_values.size() + 1) {
        return false;
      }
      for (const auto& t : rep.lin_z) {
        if (z_resp[t.i0] + z_resp[t.i1] != z_resp[t.i2]) {
          return false;
        }
      }
      for (const auto& t : rep.lin_h) {
        if (h_resp[t.i0] + h_resp[t.i1] != h_resp[t.i2]) {
          return false;
        }
      }
      F a_tau = z_resp[rep.qa] - z_resp[rep.blind_z] +
                BoundContribution(rep.a_bound, bound_values);
      F b_tau = z_resp[rep.qb] - z_resp[rep.blind_z] +
                BoundContribution(rep.b_bound, bound_values);
      F c_tau = z_resp[rep.qc] - z_resp[rep.blind_z] +
                BoundContribution(rep.c_bound, bound_values);
      F h_tau = h_resp[rep.qd] - h_resp[rep.blind_h];
      if (rep.d_tau * h_tau != a_tau * b_tau - c_tau) {
        return false;
      }
    }
    return true;
  }

 private:
  static LinTriple PushLinearityTriple(std::vector<std::vector<F>>* queries,
                                       size_t len, Prg& prg) {
    std::vector<F> a = prg.NextFieldVector<F>(len);
    std::vector<F> b = prg.NextFieldVector<F>(len);
    std::vector<F> c(len);
    for (size_t i = 0; i < len; i++) {
      c[i] = a[i] + b[i];
    }
    LinTriple t;
    t.i0 = queries->size();
    queries->push_back(std::move(a));
    t.i1 = queries->size();
    queries->push_back(std::move(b));
    t.i2 = queries->size();
    queries->push_back(std::move(c));
    return t;
  }

  static size_t PushBlinded(std::vector<std::vector<F>>* queries,
                            std::vector<F> raw, const std::vector<F>& blind) {
    for (size_t i = 0; i < raw.size(); i++) {
      raw[i] += blind[i];
    }
    size_t idx = queries->size();
    queries->push_back(std::move(raw));
    return idx;
  }

  static F SampleTau(size_t degree, Prg& prg) {
    using Repr = typename F::Repr;
    const Repr limit(static_cast<uint64_t>(degree));
    for (;;) {
      F tau = prg.NextField<F>();
      if (tau.ToCanonical() > limit) {
        return tau;
      }
    }
  }

  // Size precondition (rows.size() == bound_values.size() + 1) is checked
  // by Decide before any call, explicitly rather than by assert: the rows
  // come from the verifier's own setup but the bound values are
  // caller-supplied per instance.
  static F BoundContribution(const std::vector<F>& rows,
                             const std::vector<F>& bound_values) {
    F acc = rows[0];
    for (size_t k = 0; k < bound_values.size(); k++) {
      acc += rows[1 + k] * bound_values[k];
    }
    return acc;
  }
};

}  // namespace zaatar

#endif  // SRC_PCP_ZAATAR_PCP_H_
