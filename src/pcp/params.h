// Soundness parameters shared by both linear PCPs (paper Appendix A.2).
//
// With delta = 0.0294 and rho_lin = 20 linearity-test iterations, a single
// PCP repetition has soundness error kappa = 0.177; rho = 8 repetitions give
// kappa^rho < 9.6e-7 ("less than one part in a million"). The argument
// system adds a commitment error of 9·mu·|F|^(-1/3), negligible for the
// 128/220-bit fields.

#ifndef SRC_PCP_PARAMS_H_
#define SRC_PCP_PARAMS_H_

#include <cstddef>

namespace zaatar {

struct PcpParams {
  size_t rho_lin = 20;  // linearity test iterations per repetition
  size_t rho = 8;       // PCP repetitions

  // Paper-faithful single-repetition soundness bound.
  static constexpr double kKappa = 0.177;

  // Query-count accounting used by the cost models (Figure 3):
  // Ginger: l = 3·rho_lin + 2 high-order queries per repetition.
  size_t GingerHighOrderQueries() const { return 3 * rho_lin + 2; }
  // Zaatar: l' = 6·rho_lin + 4 total queries per repetition.
  size_t ZaatarTotalQueries() const { return 6 * rho_lin + 4; }

  // Parameters for fast tests: still sound enough to distinguish honest from
  // cheating with overwhelming probability, but far fewer queries.
  static PcpParams Light() { return PcpParams{.rho_lin = 3, .rho = 2}; }
};

}  // namespace zaatar

#endif  // SRC_PCP_PARAMS_H_
