// The baseline linear PCP of Ginger/Pepper (paper §2.2), built on the
// classical construction of Arora et al.: the proof is u = (z, z ⊗ z), so
// its length is quadratic in the number of variables. Zaatar's improvement
// is measured against this encoding.
//
// Batching requires the verifier's queries to be independent of the instance
// inputs. Following Pepper/Ginger, bound variables therefore enter the
// encoded system only through *binding constraints* z_proxy - x_k = 0: the
// input value sits in the constraint's constant term, so it only affects the
// scalar gamma_0 of the circuit test (computed per instance), never the
// shared query vectors. Conveniently, reinterpreting every variable of a
// GingerSystem as unbound keeps the index space intact; we just append the
// binding constraints.
//
// Per repetition the verifier runs:
//   - rho_lin linearity triples against pi_1 (length n) and pi_2 (length n²),
//   - a quadratic-correction test:
//       pi_1(qa) · pi_1(qb) = pi_2(q3 + qa ⊗ qb) - pi_2(q3),
//   - a circuit test with gamma_1, gamma_2 built from fresh randomness v_j:
//       (pi_2(g2+b2) - pi_2(b2)) + (pi_1(g1+b1) - pi_1(b1)) + gamma_0 = 0.

#ifndef SRC_PCP_GINGER_PCP_H_
#define SRC_PCP_GINGER_PCP_H_

#include <cassert>
#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "src/constraints/ginger.h"
#include "src/crypto/prg.h"
#include "src/pcp/linear_oracle.h"
#include "src/pcp/params.h"
#include "src/util/status.h"

namespace zaatar {

// A GingerSystem re-encoded for the PCP: every variable is part of the proof
// and bound variables are pinned by binding constraints whose constants are
// filled in per instance.
template <typename F>
struct GingerPcpInstance {
  size_t n = 0;  // proof dimension (= total variables of the source system)
  std::vector<GingerConstraint<F>> circuit;  // input-independent constraints
  // bindings[k] = variable index pinned to bound value k (inputs then
  // outputs, layout order). The implied constraint is w_v - value_k = 0.
  std::vector<uint32_t> bindings;
};

template <typename F>
GingerPcpInstance<F> BuildGingerPcpInstance(const GingerSystem<F>& sys) {
  GingerPcpInstance<F> inst;
  inst.n = sys.layout.Total();
  inst.circuit = sys.constraints;
  size_t n_bound = sys.layout.num_inputs + sys.layout.num_outputs;
  inst.bindings.reserve(n_bound);
  for (size_t k = 0; k < n_bound; k++) {
    inst.bindings.push_back(
        static_cast<uint32_t>(sys.layout.num_unbound + k));
  }
  return inst;
}

// The honest prover's proof: pi_1 = w, pi_2 = w ⊗ w.
template <typename F>
struct GingerProof {
  std::vector<F> z;       // length n
  std::vector<F> tensor;  // length n², tensor[i*n + k] = z_i · z_k
};

template <typename F>
GingerProof<F> BuildGingerProof(const GingerPcpInstance<F>& inst,
                                const std::vector<F>& assignment) {
  assert(assignment.size() == inst.n);
  GingerProof<F> proof;
  proof.z = assignment;
  proof.tensor.resize(inst.n * inst.n);
  for (size_t i = 0; i < inst.n; i++) {
    for (size_t k = 0; k < inst.n; k++) {
      proof.tensor[i * inst.n + k] = assignment[i] * assignment[k];
    }
  }
  return proof;
}

template <typename F>
class GingerPcp {
 public:
  struct LinTriple {
    size_t i0, i1, i2;
  };

  struct Repetition {
    std::vector<LinTriple> lin1, lin2;
    size_t quad_a = 0, quad_b = 0;               // pi_1 indices
    size_t quad_blind = 0, quad_main = 0;        // pi_2 indices
    size_t gamma1 = 0, gamma2 = 0;               // blinded circuit queries
    size_t blind1 = 0, blind2 = 0;
    F gamma0_fixed;
    std::vector<F> gamma_bound;  // v_j of each binding constraint
  };

  struct Queries {
    std::vector<std::vector<F>> pi1_queries;  // length n each
    std::vector<std::vector<F>> pi2_queries;  // length n² each
    std::vector<Repetition> reps;
    size_t n = 0;

    size_t TotalQueryCount() const {
      return pi1_queries.size() + pi2_queries.size();
    }
  };

  static Queries GenerateQueries(const GingerPcpInstance<F>& inst,
                                 const PcpParams& params, Prg& prg) {
    const size_t n = inst.n;
    Queries out;
    out.n = n;
    out.reps.reserve(params.rho);
    for (size_t rep = 0; rep < params.rho; rep++) {
      Repetition r;
      for (size_t k = 0; k < params.rho_lin; k++) {
        r.lin1.push_back(PushLinearityTriple(&out.pi1_queries, n, prg));
        r.lin2.push_back(PushLinearityTriple(&out.pi2_queries, n * n, prg));
      }
      r.blind1 = r.lin1[0].i0;
      r.blind2 = r.lin2[0].i0;

      // Quadratic-correction test.
      std::vector<F> qa = prg.NextFieldVector<F>(n);
      std::vector<F> qb = prg.NextFieldVector<F>(n);
      std::vector<F> q3 = prg.NextFieldVector<F>(n * n);
      std::vector<F> q3_outer(n * n);
      for (size_t i = 0; i < n; i++) {
        for (size_t k = 0; k < n; k++) {
          q3_outer[i * n + k] = q3[i * n + k] + qa[i] * qb[k];
        }
      }
      r.quad_a = out.pi1_queries.size();
      out.pi1_queries.push_back(std::move(qa));
      r.quad_b = out.pi1_queries.size();
      out.pi1_queries.push_back(std::move(qb));
      r.quad_blind = out.pi2_queries.size();
      out.pi2_queries.push_back(std::move(q3));
      r.quad_main = out.pi2_queries.size();
      out.pi2_queries.push_back(std::move(q3_outer));

      // Circuit test: gamma vectors from per-constraint randomness v_j.
      std::vector<F> gamma1(n, F::Zero());
      std::vector<F> gamma2(n * n, F::Zero());
      F gamma0 = F::Zero();
      for (const auto& c : inst.circuit) {
        F v = prg.NextField<F>();
        gamma0 += v * c.linear.constant();
        for (const auto& [var, coeff] : c.linear.terms()) {
          gamma1[var] += v * coeff;
        }
        for (const auto& q : c.quad) {
          gamma2[static_cast<size_t>(q.a) * n + q.b] += v * q.coeff;
        }
      }
      r.gamma_bound.reserve(inst.bindings.size());
      for (uint32_t var : inst.bindings) {
        F v = prg.NextField<F>();
        gamma1[var] += v;  // constraint w_var - value = 0
        r.gamma_bound.push_back(v);
      }
      r.gamma0_fixed = gamma0;
      r.gamma1 = PushBlinded(&out.pi1_queries, std::move(gamma1),
                             out.pi1_queries[r.blind1]);
      r.gamma2 = PushBlinded(&out.pi2_queries, std::move(gamma2),
                             out.pi2_queries[r.blind2]);
      out.reps.push_back(std::move(r));
    }
    return out;
  }

  // Same contract as ZaatarPcp: response vectors may be wire-decoded, so
  // their shape is screened with a typed error (and re-checked in Decide in
  // release builds) instead of assert-only validation.
  static Status ValidateResponseShape(const Queries& queries,
                                      const std::vector<F>& resp1,
                                      const std::vector<F>& resp2) {
    if (resp1.size() != queries.pi1_queries.size()) {
      return ShapeMismatchError(
          "pi1 response count " + std::to_string(resp1.size()) +
          " != query count " + std::to_string(queries.pi1_queries.size()));
    }
    if (resp2.size() != queries.pi2_queries.size()) {
      return ShapeMismatchError(
          "pi2 response count " + std::to_string(resp2.size()) +
          " != query count " + std::to_string(queries.pi2_queries.size()));
    }
    return Status::Ok();
  }

  static bool Decide(const Queries& queries, const std::vector<F>& resp1,
                     const std::vector<F>& resp2,
                     const std::vector<F>& bound_values) {
    if (!ValidateResponseShape(queries, resp1, resp2).ok()) {
      return false;
    }
    for (const auto& rep : queries.reps) {
      for (const auto& t : rep.lin1) {
        if (resp1[t.i0] + resp1[t.i1] != resp1[t.i2]) {
          return false;
        }
      }
      for (const auto& t : rep.lin2) {
        if (resp2[t.i0] + resp2[t.i1] != resp2[t.i2]) {
          return false;
        }
      }
      // Quadratic correction.
      if (resp1[rep.quad_a] * resp1[rep.quad_b] !=
          resp2[rep.quad_main] - resp2[rep.quad_blind]) {
        return false;
      }
      // Circuit test. The bound values are caller-supplied per instance, so
      // a count mismatch is a reject, not an assert (compiled out in
      // release) — indexing past gamma_bound would be UB.
      if (rep.gamma_bound.size() != bound_values.size()) {
        return false;
      }
      F gamma0 = rep.gamma0_fixed;
      for (size_t k = 0; k < bound_values.size(); k++) {
        gamma0 -= rep.gamma_bound[k] * bound_values[k];
      }
      F val = (resp2[rep.gamma2] - resp2[rep.blind2]) +
              (resp1[rep.gamma1] - resp1[rep.blind1]) + gamma0;
      if (!val.IsZero()) {
        return false;
      }
    }
    return true;
  }

 private:
  static LinTriple PushLinearityTriple(std::vector<std::vector<F>>* queries,
                                       size_t len, Prg& prg) {
    std::vector<F> a = prg.NextFieldVector<F>(len);
    std::vector<F> b = prg.NextFieldVector<F>(len);
    std::vector<F> c(len);
    for (size_t i = 0; i < len; i++) {
      c[i] = a[i] + b[i];
    }
    LinTriple t;
    t.i0 = queries->size();
    queries->push_back(std::move(a));
    t.i1 = queries->size();
    queries->push_back(std::move(b));
    t.i2 = queries->size();
    queries->push_back(std::move(c));
    return t;
  }

  static size_t PushBlinded(std::vector<std::vector<F>>* queries,
                            std::vector<F> raw, const std::vector<F>& blind) {
    for (size_t i = 0; i < raw.size(); i++) {
      raw[i] += blind[i];
    }
    size_t idx = queries->size();
    queries->push_back(std::move(raw));
    return idx;
  }
};

}  // namespace zaatar

#endif  // SRC_PCP_GINGER_PCP_H_
