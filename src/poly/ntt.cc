#include "src/poly/ntt.h"

#include <cassert>
#include <map>
#include <memory>
#include <mutex>
#include <utility>

namespace zaatar {

namespace {

// Decimation-in-time butterflies expect bit-reversed input ordering.
void BitReverse(uint64_t* data, size_t log_n) {
  size_t n = size_t{1} << log_n;
  for (size_t i = 0, j = 0; i < n; i++) {
    if (i < j) {
      std::swap(data[i], data[j]);
    }
    size_t bit = n >> 1;
    while ((j & bit) != 0) {
      j ^= bit;
      bit >>= 1;
    }
    j |= bit;
  }
}

}  // namespace

NttPlan::NttPlan(size_t prime_index, size_t log_n)
    : field_(kNttPrimes[prime_index]), log_n_(log_n) {
  assert(prime_index < kNumNttPrimes);
  assert(log_n <= kNttTwoAdicity);
  size_t n = size();

  // Root of order n: root42^(2^(42 - log_n)).
  uint64_t root = field_.ToMont(kNttRoots[prime_index]);
  for (size_t i = 0; i < kNttTwoAdicity - log_n; i++) {
    root = field_.Mul(root, root);
  }
  uint64_t inv_root = field_.Inverse(root);

  // Twiddle layout: for each stage with half-block size m, powers w^0..w^{m-1}
  // of the order-2m root. Total n-1 entries.
  fwd_twiddles_.resize(n);
  inv_twiddles_.resize(n);
  for (uint64_t* tw : {fwd_twiddles_.data(), inv_twiddles_.data()}) {
    uint64_t r = (tw == fwd_twiddles_.data()) ? root : inv_root;
    size_t pos = 0;
    for (size_t m = n / 2; m >= 1; m /= 2) {
      // Root of order 2m for this stage: r^(n / (2m)).
      uint64_t stage_root = r;
      for (size_t k = 2 * m; k < n; k *= 2) {
        stage_root = field_.Mul(stage_root, stage_root);
      }
      uint64_t w = field_.One();
      for (size_t j = 0; j < m; j++) {
        tw[pos++] = w;
        w = field_.Mul(w, stage_root);
      }
    }
  }

  uint64_t n_mont = field_.ToMont(n % field_.modulus());
  n_inv_mont_ = field_.Inverse(n_mont);
}

void NttPlan::Transform(uint64_t* data,
                        const std::vector<uint64_t>& twiddles) const {
  size_t n = size();
  BitReverse(data, log_n_);
  // Stages from block size 2 upward; twiddles were stored from the widest
  // stage (m = n/2) down, so index from the tail.
  for (size_t m = 1; m < n; m *= 2) {
    // Twiddle block for this stage starts where the stage with half-size m
    // was stored. Stage order in storage: m = n/2 first (offset 0), then
    // n/4, ..., 1. Stage with half-size m sits at offset n - 2m.
    const uint64_t* w = &twiddles[n - 2 * m];
    for (size_t block = 0; block < n; block += 2 * m) {
      for (size_t j = 0; j < m; j++) {
        uint64_t u = data[block + j];
        uint64_t t = field_.Mul(data[block + j + m], w[j]);
        data[block + j] = field_.Add(u, t);
        data[block + j + m] = field_.Sub(u, t);
      }
    }
  }
}

void NttPlan::Forward(uint64_t* data) const { Transform(data, fwd_twiddles_); }

void NttPlan::Inverse(uint64_t* data) const {
  Transform(data, inv_twiddles_);
  size_t n = size();
  for (size_t i = 0; i < n; i++) {
    data[i] = field_.Mul(data[i], n_inv_mont_);
  }
}

const NttPlan& GetNttPlan(size_t prime_index, size_t log_n) {
  static std::mutex mu;
  static std::map<std::pair<size_t, size_t>, std::unique_ptr<NttPlan>> cache;
  std::lock_guard<std::mutex> lock(mu);
  auto key = std::make_pair(prime_index, log_n);
  auto it = cache.find(key);
  if (it == cache.end()) {
    it = cache.emplace(key, std::make_unique<NttPlan>(prime_index, log_n))
             .first;
  }
  return *it->second;
}

std::vector<uint64_t> ConvolveModPrime(size_t prime_index, const uint64_t* a,
                                       size_t a_len, const uint64_t* b,
                                       size_t b_len) {
  assert(a_len > 0 && b_len > 0);
  size_t out_len = a_len + b_len - 1;
  size_t log_n = 0;
  while ((size_t{1} << log_n) < out_len) {
    log_n++;
  }
  const NttPlan& plan = GetNttPlan(prime_index, log_n);
  const MontField64& f = plan.field();
  size_t n = plan.size();

  std::vector<uint64_t> fa(n, 0), fb(n, 0);
  for (size_t i = 0; i < a_len; i++) {
    fa[i] = f.ToMont(a[i]);
  }
  for (size_t i = 0; i < b_len; i++) {
    fb[i] = f.ToMont(b[i]);
  }
  plan.Forward(fa.data());
  plan.Forward(fb.data());
  for (size_t i = 0; i < n; i++) {
    fa[i] = f.Mul(fa[i], fb[i]);
  }
  plan.Inverse(fa.data());
  std::vector<uint64_t> out(out_len);
  for (size_t i = 0; i < out_len; i++) {
    out[i] = f.FromMont(fa[i]);
  }
  return out;
}

}  // namespace zaatar
