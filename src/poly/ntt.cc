#include "src/poly/ntt.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <memory>
#include <mutex>
#include <utility>

namespace zaatar {

namespace {

// Decimation-in-time butterflies expect bit-reversed input ordering.
void BitReverse(uint64_t* data, size_t log_n) {
  size_t n = size_t{1} << log_n;
  for (size_t i = 0, j = 0; i < n; i++) {
    if (i < j) {
      std::swap(data[i], data[j]);
    }
    size_t bit = n >> 1;
    while ((j & bit) != 0) {
      j ^= bit;
      bit >>= 1;
    }
    j |= bit;
  }
}

}  // namespace

NttPlan::NttPlan(size_t prime_index, size_t log_n)
    : field_(kNttPrimes[prime_index]), log_n_(log_n) {
  assert(prime_index < kNumNttPrimes);
  assert(log_n <= kNttTwoAdicity);
  size_t n = size();

  // Root of order n: root42^(2^(42 - log_n)).
  uint64_t root = field_.ToMont(kNttRoots[prime_index]);
  for (size_t i = 0; i < kNttTwoAdicity - log_n; i++) {
    root = field_.Mul(root, root);
  }
  uint64_t inv_root = field_.Inverse(root);

  // Twiddle layout: for each stage with half-block size m, powers w^0..w^{m-1}
  // of the order-2m root. Total n-1 entries.
  fwd_twiddles_.resize(n);
  inv_twiddles_.resize(n);
  for (uint64_t* tw : {fwd_twiddles_.data(), inv_twiddles_.data()}) {
    uint64_t r = (tw == fwd_twiddles_.data()) ? root : inv_root;
    size_t pos = 0;
    for (size_t m = n / 2; m >= 1; m /= 2) {
      // Root of order 2m for this stage: r^(n / (2m)).
      uint64_t stage_root = r;
      for (size_t k = 2 * m; k < n; k *= 2) {
        stage_root = field_.Mul(stage_root, stage_root);
      }
      uint64_t w = field_.One();
      for (size_t j = 0; j < m; j++) {
        tw[pos++] = w;
        w = field_.Mul(w, stage_root);
      }
    }
  }

  uint64_t n_mont = field_.ToMont(n % field_.modulus());
  n_inv_mont_ = field_.Inverse(n_mont);
}

void NttPlan::Transform(uint64_t* data,
                        const std::vector<uint64_t>& twiddles) const {
  size_t n = size();
  BitReverse(data, log_n_);
  // Stages from block size 2 upward; twiddles were stored from the widest
  // stage (m = n/2) down, so index from the tail.
  for (size_t m = 1; m < n; m *= 2) {
    // Twiddle block for this stage starts where the stage with half-size m
    // was stored. Stage order in storage: m = n/2 first (offset 0), then
    // n/4, ..., 1. Stage with half-size m sits at offset n - 2m.
    const uint64_t* w = &twiddles[n - 2 * m];
    for (size_t block = 0; block < n; block += 2 * m) {
      for (size_t j = 0; j < m; j++) {
        uint64_t u = data[block + j];
        uint64_t t = field_.Mul(data[block + j + m], w[j]);
        data[block + j] = field_.Add(u, t);
        data[block + j + m] = field_.Sub(u, t);
      }
    }
  }
}

void NttPlan::Forward(uint64_t* data) const { Transform(data, fwd_twiddles_); }

void NttPlan::Inverse(uint64_t* data) const {
  Transform(data, inv_twiddles_);
  size_t n = size();
  for (size_t i = 0; i < n; i++) {
    data[i] = field_.Mul(data[i], n_inv_mont_);
  }
}

void TransposeBlocked(const uint64_t* src, uint64_t* dst, size_t rows,
                      size_t cols) {
  constexpr size_t kTile = 32;  // 2 × 8KB tiles, comfortably inside L1
  for (size_t r0 = 0; r0 < rows; r0 += kTile) {
    size_t r1 = std::min(rows, r0 + kTile);
    for (size_t c0 = 0; c0 < cols; c0 += kTile) {
      size_t c1 = std::min(cols, c0 + kTile);
      for (size_t r = r0; r < r1; r++) {
        for (size_t c = c0; c < c1; c++) {
          dst[c * rows + r] = src[r * cols + c];
        }
      }
    }
  }
}

namespace {

// Six-step NTT over the n1×n2 split of n (n1 = 2^⌊log/2⌋ rows): transpose,
// n2 column transforms of size n1, twiddle by w^(i2·k1), transpose, n1 row
// transforms of size n2, and a final transpose back to natural order. Row
// transforms recurse through the dispatcher, so they always hit the small
// cached plans. The identity used (w_n1 = w_n^n2, w_n2 = w_n^n1) holds
// because every plan derives its root from the same 2^42 generator.
void FourStep(size_t prime_index, uint64_t* data, size_t log_n,
              bool inverse) {
  assert(log_n >= 2 && log_n <= kNttTwoAdicity);
  size_t l1 = log_n / 2;
  size_t l2 = log_n - l1;
  size_t n1 = size_t{1} << l1;
  size_t n2 = size_t{1} << l2;
  size_t n = size_t{1} << log_n;
  const MontField64 f(kNttPrimes[prime_index]);

  uint64_t root = f.ToMont(kNttRoots[prime_index]);
  for (size_t i = 0; i < kNttTwoAdicity - log_n; i++) {
    root = f.Mul(root, root);
  }
  if (inverse) {
    root = f.Inverse(root);
  }

  std::vector<uint64_t> scratch(n);
  // scratch[i2·n1 + i1] = data[i1·n2 + i2]
  TransposeBlocked(data, scratch.data(), n1, n2);
  for (size_t r = 0; r < n2; r++) {
    uint64_t* row = scratch.data() + r * n1;
    if (inverse) {
      NttInverse(prime_index, row, l1);
    } else {
      NttForward(prime_index, row, l1);
    }
  }
  // Twiddle correction w^(i2·k1), computed row by row (no n-entry table).
  uint64_t wrow = f.One();  // w^(i2)
  for (size_t i2 = 0; i2 < n2; i2++) {
    uint64_t* row = scratch.data() + i2 * n1;
    uint64_t w = f.One();
    for (size_t k1 = 0; k1 < n1; k1++) {
      row[k1] = f.Mul(row[k1], w);
      w = f.Mul(w, wrow);
    }
    wrow = f.Mul(wrow, root);
  }
  // data[k1·n2 + i2] = scratch[i2·n1 + k1]
  TransposeBlocked(scratch.data(), data, n2, n1);
  for (size_t r = 0; r < n1; r++) {
    uint64_t* row = data + r * n2;
    if (inverse) {
      NttInverse(prime_index, row, l2);
    } else {
      NttForward(prime_index, row, l2);
    }
  }
  // Natural order: out[k1 + n1·k2] = current[k1·n2 + k2].
  TransposeBlocked(data, scratch.data(), n1, n2);
  std::copy(scratch.begin(), scratch.end(), data);
}

}  // namespace

void NttForwardFourStep(size_t prime_index, uint64_t* data, size_t log_n) {
  FourStep(prime_index, data, log_n, /*inverse=*/false);
}

void NttInverseFourStep(size_t prime_index, uint64_t* data, size_t log_n) {
  FourStep(prime_index, data, log_n, /*inverse=*/true);
}

void NttForward(size_t prime_index, uint64_t* data, size_t log_n) {
  if (log_n >= kNttFourStepMinLogN) {
    NttForwardFourStep(prime_index, data, log_n);
    return;
  }
  GetNttPlan(prime_index, log_n).Forward(data);
}

void NttInverse(size_t prime_index, uint64_t* data, size_t log_n) {
  if (log_n >= kNttFourStepMinLogN) {
    NttInverseFourStep(prime_index, data, log_n);
    return;
  }
  GetNttPlan(prime_index, log_n).Inverse(data);
}

const NttPlan& GetNttPlan(size_t prime_index, size_t log_n) {
  static std::mutex mu;
  static std::map<std::pair<size_t, size_t>, std::unique_ptr<NttPlan>> cache;
  std::lock_guard<std::mutex> lock(mu);
  auto key = std::make_pair(prime_index, log_n);
  auto it = cache.find(key);
  if (it == cache.end()) {
    it = cache.emplace(key, std::make_unique<NttPlan>(prime_index, log_n))
             .first;
  }
  return *it->second;
}

std::vector<uint64_t> ConvolveModPrime(size_t prime_index, const uint64_t* a,
                                       size_t a_len, const uint64_t* b,
                                       size_t b_len) {
  assert(a_len > 0 && b_len > 0);
  size_t out_len = a_len + b_len - 1;
  size_t log_n = 0;
  while ((size_t{1} << log_n) < out_len) {
    log_n++;
  }
  const MontField64 f(kNttPrimes[prime_index]);
  size_t n = size_t{1} << log_n;

  std::vector<uint64_t> fa(n, 0), fb(n, 0);
  for (size_t i = 0; i < a_len; i++) {
    fa[i] = f.ToMont(a[i]);
  }
  for (size_t i = 0; i < b_len; i++) {
    fb[i] = f.ToMont(b[i]);
  }
  NttForward(prime_index, fa.data(), log_n);
  NttForward(prime_index, fb.data(), log_n);
  for (size_t i = 0; i < n; i++) {
    fa[i] = f.Mul(fa[i], fb[i]);
  }
  NttInverse(prime_index, fa.data(), log_n);
  std::vector<uint64_t> out(out_len);
  for (size_t i = 0; i < out_len; i++) {
    out[i] = f.FromMont(fa[i]);
  }
  return out;
}

}  // namespace zaatar
