// Dense univariate polynomials over a prime field.
//
// Coefficients are stored low-degree-first. The zero polynomial is the empty
// coefficient vector; all constructors and operations maintain the invariant
// that the leading stored coefficient is nonzero.

#ifndef SRC_POLY_POLYNOMIAL_H_
#define SRC_POLY_POLYNOMIAL_H_

#include <cassert>
#include <cstddef>
#include <utility>
#include <vector>

#include "src/poly/crt_mul.h"

namespace zaatar {

template <typename F>
class Polynomial {
 public:
  Polynomial() = default;
  explicit Polynomial(std::vector<F> coeffs) : c_(std::move(coeffs)) {
    Normalize();
  }

  static Polynomial Zero() { return Polynomial(); }
  static Polynomial Constant(const F& v) { return Polynomial({v}); }
  // x - root (a subproduct-tree leaf).
  static Polynomial Linear(const F& root) {
    return Polynomial({-root, F::One()});
  }

  bool IsZero() const { return c_.empty(); }
  // Degree of the zero polynomial is reported as -1.
  long Degree() const { return static_cast<long>(c_.size()) - 1; }
  size_t CoefficientCount() const { return c_.size(); }
  const std::vector<F>& Coefficients() const { return c_; }

  const F& operator[](size_t i) const { return c_[i]; }
  F CoefficientOrZero(size_t i) const {
    return i < c_.size() ? c_[i] : F::Zero();
  }
  F LeadingCoefficient() const {
    return c_.empty() ? F::Zero() : c_.back();
  }

  bool operator==(const Polynomial& o) const { return c_ == o.c_; }
  bool operator!=(const Polynomial& o) const { return c_ != o.c_; }

  // Horner evaluation.
  F Evaluate(const F& x) const {
    F acc = F::Zero();
    for (size_t i = c_.size(); i-- > 0;) {
      acc = acc * x + c_[i];
    }
    return acc;
  }

  Polynomial operator+(const Polynomial& o) const {
    std::vector<F> r(std::max(c_.size(), o.c_.size()), F::Zero());
    for (size_t i = 0; i < c_.size(); i++) {
      r[i] += c_[i];
    }
    for (size_t i = 0; i < o.c_.size(); i++) {
      r[i] += o.c_[i];
    }
    return Polynomial(std::move(r));
  }

  Polynomial operator-(const Polynomial& o) const {
    std::vector<F> r(std::max(c_.size(), o.c_.size()), F::Zero());
    for (size_t i = 0; i < c_.size(); i++) {
      r[i] += c_[i];
    }
    for (size_t i = 0; i < o.c_.size(); i++) {
      r[i] -= o.c_[i];
    }
    return Polynomial(std::move(r));
  }

  Polynomial operator-() const {
    std::vector<F> r(c_.size());
    for (size_t i = 0; i < c_.size(); i++) {
      r[i] = -c_[i];
    }
    return Polynomial(std::move(r));
  }

  Polynomial operator*(const F& s) const {
    std::vector<F> r(c_.size());
    for (size_t i = 0; i < c_.size(); i++) {
      r[i] = c_[i] * s;
    }
    return Polynomial(std::move(r));
  }

  Polynomial operator*(const Polynomial& o) const {
    if (IsZero() || o.IsZero()) {
      return Zero();
    }
    if (std::min(c_.size(), o.c_.size()) <= kNaiveMulThreshold) {
      return Polynomial(NaiveMul(c_, o.c_));
    }
    return Polynomial(MulCrt(c_.data(), c_.size(), o.c_.data(), o.c_.size()));
  }

  // Schoolbook product (also used by tests to cross-check the CRT path).
  static std::vector<F> NaiveMul(const std::vector<F>& a,
                                 const std::vector<F>& b) {
    std::vector<F> r(a.size() + b.size() - 1, F::Zero());
    for (size_t i = 0; i < a.size(); i++) {
      if (a[i].IsZero()) {
        continue;
      }
      for (size_t j = 0; j < b.size(); j++) {
        r[i + j] += a[i] * b[j];
      }
    }
    return r;
  }

  // The first `count` coefficients (i.e. the polynomial mod x^count).
  Polynomial Truncate(size_t count) const {
    if (c_.size() <= count) {
      return *this;
    }
    return Polynomial(std::vector<F>(c_.begin(), c_.begin() + count));
  }

  // Coefficient reversal rev_k(f) = x^k f(1/x), k >= Degree().
  Polynomial Reverse(size_t k) const {
    assert(static_cast<long>(k) >= Degree());
    std::vector<F> r(k + 1, F::Zero());
    for (size_t i = 0; i < c_.size(); i++) {
      r[k - i] = c_[i];
    }
    return Polynomial(std::move(r));
  }

  // Multiplication by x^k.
  Polynomial ShiftUp(size_t k) const {
    if (IsZero()) {
      return Zero();
    }
    std::vector<F> r(c_.size() + k, F::Zero());
    for (size_t i = 0; i < c_.size(); i++) {
      r[i + k] = c_[i];
    }
    return Polynomial(std::move(r));
  }

  // Exact division by x^k (asserts the low coefficients are zero).
  Polynomial ShiftDown(size_t k) const {
    if (IsZero()) {
      return Zero();
    }
    assert(c_.size() > k);
    for (size_t i = 0; i < k; i++) {
      assert(c_[i].IsZero());
    }
    return Polynomial(std::vector<F>(c_.begin() + k, c_.end()));
  }

  // Formal derivative.
  Polynomial Derivative() const {
    if (c_.size() <= 1) {
      return Zero();
    }
    std::vector<F> r(c_.size() - 1);
    for (size_t i = 1; i < c_.size(); i++) {
      r[i - 1] = c_[i] * F::FromUint(i);
    }
    return Polynomial(std::move(r));
  }

 private:
  static constexpr size_t kNaiveMulThreshold = 32;

  void Normalize() {
    while (!c_.empty() && c_.back().IsZero()) {
      c_.pop_back();
    }
  }

  std::vector<F> c_;
};

}  // namespace zaatar

#endif  // SRC_POLY_POLYNOMIAL_H_
