// Quasi-linear polynomial multiplication over arbitrary prime fields via
// residue number systems: reduce coefficients modulo several 62-bit NTT
// primes, convolve with NTTs, and reconstruct exact integer coefficients with
// Garner's algorithm, folding the final value into the target field.
//
// This is how the prover achieves the paper's ~f·|C|·log|C| polynomial
// multiplication over the (non-FFT-friendly) 128/220-bit fields.

#ifndef SRC_POLY_CRT_MUL_H_
#define SRC_POLY_CRT_MUL_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/poly/ntt.h"

namespace zaatar {

namespace crt_internal {

// Precomputed Garner data for the first k primes plus target-field constants.
template <typename F>
struct GarnerTables {
  size_t k;
  // inv_prod[i] = (q_0 ... q_{i-1})^{-1} mod q_i, Montgomery form of q_i.
  std::vector<uint64_t> inv_prod;
  // prime_mod[i][j] = q_j mod q_i (standard form), j < i.
  std::vector<std::vector<uint64_t>> prime_mod;
  // Field embeddings of the primes.
  std::vector<F> prime_in_field;
  // Powers of 2^64 modulo each prime, for reducing big-int coefficients.
  std::vector<std::vector<uint64_t>> limb_base;  // [prime][limb]

  static const GarnerTables& Get(size_t k) {
    static std::vector<GarnerTables> cache = [] {
      std::vector<GarnerTables> all(kNumNttPrimes + 1);
      for (size_t kk = 1; kk <= kNumNttPrimes; kk++) {
        GarnerTables& t = all[kk];
        t.k = kk;
        t.inv_prod.resize(kk);
        t.prime_mod.resize(kk);
        t.prime_in_field.resize(kk);
        t.limb_base.resize(kk);
        for (size_t i = 0; i < kk; i++) {
          MontField64 f(kNttPrimes[i]);
          t.prime_mod[i].resize(i);
          uint64_t prod = f.One();
          for (size_t j = 0; j < i; j++) {
            t.prime_mod[i][j] = kNttPrimes[j] % kNttPrimes[i];
            prod = f.Mul(prod, f.ToMont(t.prime_mod[i][j]));
          }
          t.inv_prod[i] = i == 0 ? f.One() : f.Inverse(prod);
          t.prime_in_field[i] = F::FromUint(kNttPrimes[i]);
          // 2^(64j) mod q_i for the limb fold.
          size_t limbs = F::kLimbs;
          t.limb_base[i].resize(limbs);
          uint64_t base = f.ToMont((~uint64_t{0}) % kNttPrimes[i] + 1);
          uint64_t cur = f.One();
          for (size_t j = 0; j < limbs; j++) {
            t.limb_base[i][j] = cur;
            cur = f.Mul(cur, base);
          }
        }
      }
      return all;
    }();
    assert(k >= 1 && k <= kNumNttPrimes);
    return cache[k];
  }
};

}  // namespace crt_internal

// Number of CRT primes needed for products of polynomials over F with the
// given output length.
template <typename F>
size_t CrtPrimeCount(size_t min_len) {
  size_t log_n = 1;
  while ((size_t{1} << log_n) < min_len) {
    log_n++;
  }
  size_t bound_bits = 2 * F::kModulusBits + log_n + 1;
  size_t k = (bound_bits + 61) / 62;
  assert(k <= kNumNttPrimes && "coefficient bound exceeds CRT basis");
  return k;
}

// result[i] = sum_j a[j]*b[i-j] over F; output length a_len + b_len - 1.
template <typename F>
std::vector<F> MulCrt(const F* a, size_t a_len, const F* b, size_t b_len) {
  assert(a_len > 0 && b_len > 0);
  size_t out_len = a_len + b_len - 1;
  size_t k = CrtPrimeCount<F>(std::min(a_len, b_len));
  const auto& tables = crt_internal::GarnerTables<F>::Get(k);

  // Residue convolutions, one per prime.
  std::vector<std::vector<uint64_t>> residues(k);
  std::vector<uint64_t> ra(a_len), rb(b_len);
  for (size_t pi = 0; pi < k; pi++) {
    MontField64 f(kNttPrimes[pi]);
    const auto& base = tables.limb_base[pi];
    auto reduce = [&](const F& x) {
      typename F::Repr c = x.ToCanonical();
      uint64_t acc = 0;
      for (size_t j = 0; j < F::kLimbs; j++) {
        acc = f.Add(acc, f.Mul(f.ToMont(c.limbs[j]), base[j]));
      }
      return f.FromMont(acc);  // acc is in Montgomery form
    };
    for (size_t i = 0; i < a_len; i++) {
      ra[i] = reduce(a[i]);
    }
    for (size_t i = 0; i < b_len; i++) {
      rb[i] = reduce(b[i]);
    }
    residues[pi] =
        ConvolveModPrime(pi, ra.data(), a_len, rb.data(), b_len);
  }

  // Garner reconstruction per coefficient, folding into F by Horner over the
  // mixed-radix digits: value = d_0 + q_0 (d_1 + q_1 (d_2 + ...)).
  std::vector<MontField64> fields;
  fields.reserve(k);
  for (size_t pi = 0; pi < k; pi++) {
    fields.emplace_back(kNttPrimes[pi]);
  }
  std::vector<F> out(out_len);
  std::vector<uint64_t> digits(k);
  for (size_t c = 0; c < out_len; c++) {
    for (size_t i = 0; i < k; i++) {
      const MontField64& f = fields[i];
      // t = (x_i - partial) * inv_prod_i mod q_i, where partial is the
      // mixed-radix value of digits[0..i) evaluated mod q_i.
      uint64_t partial = 0;  // standard form accumulator mod q_i
      for (size_t j = i; j-- > 0;) {
        // partial = partial * q_j + d_j (mod q_i)
        uint64_t pm = f.FromMont(
            f.Mul(f.ToMont(partial), f.ToMont(tables.prime_mod[i][j])));
        partial = pm + digits[j] % kNttPrimes[i];
        if (partial >= kNttPrimes[i]) {
          partial -= kNttPrimes[i];
        }
      }
      uint64_t xi = residues[i][c];
      uint64_t diff = f.Sub(xi % kNttPrimes[i], partial);
      digits[i] = f.FromMont(f.Mul(f.ToMont(diff), tables.inv_prod[i]));
    }
    F val = F::Zero();
    for (size_t i = k; i-- > 0;) {
      val = val * tables.prime_in_field[i] + F::FromUint(digits[i]);
    }
    out[c] = val;
  }
  return out;
}

}  // namespace zaatar

#endif  // SRC_POLY_CRT_MUL_H_
