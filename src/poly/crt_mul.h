// Quasi-linear polynomial multiplication over arbitrary prime fields via
// residue number systems: reduce coefficients modulo several 62-bit NTT
// primes, convolve with NTTs, and fold the exact integer coefficients back
// into the target field.
//
// This is how the prover achieves the paper's ~f·|C|·log|C| polynomial
// multiplication over the (non-FFT-friendly) 128/220-bit fields. The heavy
// lifting lives in src/poly/residue.h (ResiduePoly<F>); MulCrt is the
// one-shot convenience wrapper Polynomial<F>::operator* calls: ingest both
// operands, one residue-domain product, fold once. Pipelines that chain
// many products (the QAP prover) hold ResiduePoly values directly and skip
// the per-product conversions entirely.

#ifndef SRC_POLY_CRT_MUL_H_
#define SRC_POLY_CRT_MUL_H_

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/poly/ntt.h"
#include "src/poly/residue.h"
#include "src/util/status.h"

namespace zaatar {

namespace crt_internal {

// Worst-case product coefficient bound in bits for operands over F with the
// given shorter length: min_len terms of 2·kModulusBits-bit products, plus
// one guard bit required by the float-corrected CRT fold (the represented
// value must stay below half the prime product).
template <typename F>
size_t MulBoundBits(size_t min_len) {
  size_t log_n = 1;
  while ((size_t{1} << log_n) < min_len) {
    log_n++;
  }
  return 2 * F::kModulusBits + log_n + 1;
}

}  // namespace crt_internal

// Number of CRT primes needed for products of polynomials over F with the
// given shorter-operand length. Asserts the basis suffices; use
// CrtPrimeCountChecked where basis exhaustion must surface as a Status.
template <typename F>
size_t CrtPrimeCount(size_t min_len) {
  return CrtBasisSizeForBound(crt_internal::MulBoundBits<F>(min_len));
}

// Status-returning variant: kOutOfRange when the product's coefficient
// bound exceeds what kNumNttPrimes 62-bit primes can represent.
template <typename F>
StatusOr<size_t> CrtPrimeCountChecked(size_t min_len) {
  size_t bound = crt_internal::MulBoundBits<F>(min_len);
  if (!CrtBasisFitsBound(bound)) {
    return OutOfRangeError(
        "CRT basis exhausted: product coefficient bound " +
        std::to_string(bound) + " bits exceeds the " +
        std::to_string(CrtBasis<F>::Capacity(kNumNttPrimes)) +
        "-bit capacity of " + std::to_string(kNumNttPrimes) +
        " NTT primes (field " + std::string(F::kName) + ", operand length " +
        std::to_string(min_len) + ")");
  }
  return CrtBasisSizeForBound(bound);
}

// result[i] = sum_j a[j]*b[i-j] over F; output length a_len + b_len - 1.
template <typename F>
std::vector<F> MulCrt(const F* a, size_t a_len, const F* b, size_t b_len) {
  assert(a_len > 0 && b_len > 0);
  size_t k = CrtPrimeCount<F>(std::min(a_len, b_len));
  const CrtBasis<F>& basis = CrtBasis<F>::Get(k);
  // Serial on purpose: operator* is called from arbitrary contexts
  // (including inside ParallelFor workers); the batch pipelines own the
  // thread fan-out.
  ResiduePoly<F> ra = ResiduePoly<F>::FromCoefficients(a, a_len, basis, 1);
  ResiduePoly<F> rb = ResiduePoly<F>::FromCoefficients(b, b_len, basis, 1);
  return ResiduePoly<F>::Mul(ra, rb, 1).ToCoefficients(1);
}

}  // namespace zaatar

#endif  // SRC_POLY_CRT_MUL_H_
