// Number-theoretic transforms over 62-bit primes with runtime Montgomery
// arithmetic. These are the workhorse of quasi-linear polynomial
// multiplication for the big verified-computation fields (src/poly/crt_mul.h)
// — the "operations based on the FFT" of the paper's Appendix A.3.
//
// The primes are of the form k·2^42 + 1 (2-adicity 42), generated offline
// with hard-coded 2^42-th roots of unity; tests verify both properties.

#ifndef SRC_POLY_NTT_H_
#define SRC_POLY_NTT_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace zaatar {

// Single-word Montgomery arithmetic with a runtime modulus (odd, < 2^63).
class MontField64 {
 public:
  constexpr explicit MontField64(uint64_t p) : p_(p) {
    uint64_t x = 1;
    for (int i = 0; i < 6; i++) {
      x *= 2 - p * x;
    }
    n0inv_ = ~x + 1;
    // r = 2^64 mod p, r2 = 2^128 mod p by doubling.
    uint64_t r = 1 % p;
    for (int i = 0; i < 64; i++) {
      r = AddRaw(r, r);
    }
    r_ = r;
    uint64_t r2 = r;
    for (int i = 0; i < 64; i++) {
      r2 = AddRaw(r2, r2);
    }
    r2_ = r2;
  }

  constexpr uint64_t modulus() const { return p_; }
  constexpr uint64_t One() const { return r_; }

  constexpr uint64_t ToMont(uint64_t x) const { return Mul(x, r2_); }
  constexpr uint64_t FromMont(uint64_t x) const { return Reduce(x); }

  constexpr uint64_t Add(uint64_t a, uint64_t b) const { return AddRaw(a, b); }
  constexpr uint64_t Sub(uint64_t a, uint64_t b) const {
    return a >= b ? a - b : a + p_ - b;
  }

  // Montgomery product a·b·2^{-64} mod p.
  constexpr uint64_t Mul(uint64_t a, uint64_t b) const {
    __uint128_t t = static_cast<__uint128_t>(a) * b;
    uint64_t m = static_cast<uint64_t>(t) * n0inv_;
    __uint128_t u = (t + static_cast<__uint128_t>(m) * p_) >> 64;
    uint64_t r = static_cast<uint64_t>(u);
    return r >= p_ ? r - p_ : r;
  }

  constexpr uint64_t Pow(uint64_t base_mont, uint64_t e) const {
    uint64_t r = r_;
    uint64_t b = base_mont;
    while (e != 0) {
      if (e & 1) {
        r = Mul(r, b);
      }
      b = Mul(b, b);
      e >>= 1;
    }
    return r;
  }

  constexpr uint64_t Inverse(uint64_t x_mont) const {
    return Pow(x_mont, p_ - 2);
  }

 private:
  constexpr uint64_t AddRaw(uint64_t a, uint64_t b) const {
    uint64_t s = a + b;  // p < 2^63 so no word overflow
    return s >= p_ ? s - p_ : s;
  }
  constexpr uint64_t Reduce(uint64_t a) const {
    uint64_t m = a * n0inv_;
    __uint128_t u = (static_cast<__uint128_t>(a) +
                     static_cast<__uint128_t>(m) * p_) >>
                    64;
    uint64_t r = static_cast<uint64_t>(u);
    return r >= p_ ? r - p_ : r;
  }

  uint64_t p_;
  uint64_t n0inv_ = 0;
  uint64_t r_ = 0;
  uint64_t r2_ = 0;
};

// CRT basis: primes k·2^42 + 1 just above 2^62, with generators of the 2^42
// subgroup. Up to 8 primes cover coefficient magnitudes beyond
// 2·220 + log2(n) bits, enough for F220 products of length 2^42.
inline constexpr size_t kNumNttPrimes = 8;
inline constexpr std::array<uint64_t, kNumNttPrimes> kNttPrimes = {
    0x4000380000000001ULL, 0x4000980000000001ULL, 0x4000d80000000001ULL,
    0x4001280000000001ULL, 0x4001440000000001ULL, 0x4001700000000001ULL,
    0x4001b00000000001ULL, 0x4001c40000000001ULL};
// 2^42-th roots of unity for each prime (standard representation).
inline constexpr std::array<uint64_t, kNumNttPrimes> kNttRoots = {
    0x0b9d71e0d419973aULL, 0x2995b1e066b9c59aULL, 0x019d0f85d56e5e4fULL,
    0x2fa3bf8fdd000cc9ULL, 0x024e4706f0564548ULL, 0x33ca6cb3b983405eULL,
    0x3b8486e31d59ca76ULL, 0x333bd2cf1e0af47aULL};
inline constexpr size_t kNttTwoAdicity = 42;

// A transform plan for one prime at one power-of-two size: cached twiddles.
class NttPlan {
 public:
  NttPlan(size_t prime_index, size_t log_n);

  size_t size() const { return size_t{1} << log_n_; }
  const MontField64& field() const { return field_; }

  // In-place forward/inverse transform of `data` (Montgomery form), length
  // size(). Inverse includes the 1/n scaling.
  void Forward(uint64_t* data) const;
  void Inverse(uint64_t* data) const;

 private:
  void Transform(uint64_t* data, const std::vector<uint64_t>& twiddles) const;

  MontField64 field_;
  size_t log_n_;
  std::vector<uint64_t> fwd_twiddles_;  // bit-reversed order per stage
  std::vector<uint64_t> inv_twiddles_;
  uint64_t n_inv_mont_;
};

// Cached plan lookup (plans are immutable once built).
const NttPlan& GetNttPlan(size_t prime_index, size_t log_n);

// Sizes at or above 2^kNttFourStepMinLogN switch from the cached radix-2
// plans (whose 2n-entry twiddle tables overflow L2 there) to a four-step
// n1×n2 decomposition: blocked transpose, row transforms through the small
// cached plans, an on-the-fly twiddle pass, and transposes back to natural
// order. Output ordering is identical to the radix-2 path, so images
// produced at different times by either path stay pointwise-compatible.
inline constexpr size_t kNttFourStepMinLogN = 15;

// In-place transforms of 2^log_n Montgomery-form words, natural order in and
// out, dispatching on size as above. Inverse includes the 1/n scaling.
void NttForward(size_t prime_index, uint64_t* data, size_t log_n);
void NttInverse(size_t prime_index, uint64_t* data, size_t log_n);

// The four-step path directly, any size with log_n >= 2 (exposed so tests
// can cross-check it against the radix-2 plans below the dispatch
// threshold).
void NttForwardFourStep(size_t prime_index, uint64_t* data, size_t log_n);
void NttInverseFourStep(size_t prime_index, uint64_t* data, size_t log_n);

// Out-of-place cache-blocked matrix transpose of rows×cols 64-bit words:
// dst[c·rows + r] = src[r·cols + c], tiled so both sides stay in L1.
void TransposeBlocked(const uint64_t* src, uint64_t* dst, size_t rows,
                      size_t cols);

// Convolution of a and b modulo kNttPrimes[prime_index]. Inputs in standard
// (non-Montgomery) representation reduced mod the prime; output likewise,
// length a_len + b_len - 1.
std::vector<uint64_t> ConvolveModPrime(size_t prime_index, const uint64_t* a,
                                       size_t a_len, const uint64_t* b,
                                       size_t b_len);

}  // namespace zaatar

#endif  // SRC_POLY_NTT_H_
