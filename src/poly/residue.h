// Residue-domain (CRT/NTT evaluation form) polynomials: the prover-side
// representation that keeps the whole ComputeH pipeline inside the 62-bit
// NTT prime basis. Coefficients are exact non-negative integers v < 2^bound,
// stored as Montgomery-form residues v mod q_i per prime; because integer
// ring arithmetic commutes with reduction mod p, the fold into the target
// field F happens once at output instead of once per multiply (the old
// MulCrt contract). See DESIGN.md §15 for the representation contract.
//
// Two pieces live here:
//   - CrtBasis<F>: per-(field, k) precomputed constants — double-Montgomery
//     limb bases for one-mul coefficient reduction, and the O(k)
//     float-corrected CRT fold (t_i = x_i·(Q/q_i)^{-1} mod q_i, then
//     v ≡ Σ t_i·(Q/q_i) − αQ with α recovered from Σ t_i/q_i in doubles),
//     replacing the O(k²) Garner reconstruction.
//   - ResiduePoly<F>: per-prime evaluation vectors with an integer
//     coefficient bound tracked in bits. Mul/Add/Sub/Truncate/Reverse stay
//     in residue form; Renormalize folds to F and re-reduces when bounds
//     approach the basis capacity (62k−1 bits — one guard bit under Q so
//     the float α-correction cannot straddle an integer).
//
// Subtraction keeps values non-negative by adding a multiple of p
// (M = p·2^s ≥ 2^bound_b, free modulo p), so the fold never needs a sign.

#ifndef SRC_POLY_RESIDUE_H_
#define SRC_POLY_RESIDUE_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <thread>
#include <vector>

#include "src/field/prime_field.h"
#include "src/obs/metrics.h"
#include "src/poly/ntt.h"
#include "src/util/parallel_for.h"

namespace zaatar {

// Smallest l with 2^l >= n (so CeilLog2(1) == 0).
inline size_t CeilLog2(size_t n) {
  size_t l = 0;
  while ((size_t{1} << l) < n) {
    l++;
  }
  return l;
}

// True iff a k <= kNumNttPrimes basis can hold integers < 2^bound_bits with
// the guard bit the float-corrected fold needs (capacity 62k-1 bits).
inline bool CrtBasisFitsBound(size_t bound_bits) {
  return bound_bits / 62 + 1 <= kNumNttPrimes;
}

// Smallest prime count whose capacity (62k-1 bits) covers bound_bits.
inline size_t CrtBasisSizeForBound(size_t bound_bits) {
  size_t k = bound_bits / 62 + 1;
  assert(k <= kNumNttPrimes && "coefficient bound exceeds CRT basis");
  return k;
}

// Worker count for the per-residue ParallelFor fan-out. Prime-level
// parallelism tops out at kNumNttPrimes; ZAATAR_POLY_WORKERS overrides.
inline size_t PolyWorkers() {
  static const size_t kWorkers = [] {
    if (const char* env = std::getenv("ZAATAR_POLY_WORKERS")) {
      size_t v = std::strtoul(env, nullptr, 10);
      return v == 0 ? size_t{1} : std::min(v, kNumNttPrimes);
    }
    size_t hc = std::thread::hardware_concurrency();
    return hc == 0 ? size_t{1} : std::min(hc, kNumNttPrimes);
  }();
  return kWorkers;
}

// Precomputed constants for a k-prime residue basis targeting field F.
template <typename F>
class CrtBasis {
 public:
  size_t k() const { return k_; }
  // Largest representable integer bound (bits): values < 2^capacity < Q/2.
  static constexpr size_t Capacity(size_t k) { return 62 * k - 1; }
  size_t capacity_bits() const { return Capacity(k_); }

  const MontField64& field(size_t pi) const { return fields_[pi]; }
  uint64_t prime(size_t pi) const { return kNttPrimes[pi]; }

  // Reduces a canonical big integer (little-endian limbs, < 2^(64*count))
  // into Montgomery-form residues, one Montgomery multiply per limb: the
  // limb bases are stored as 2^(64j)·R² mod q so Mul(limb, base_j) lands
  // directly in Montgomery form (the old MulCrt paid ToMont per limb plus a
  // FromMont on the accumulator).
  void ReduceLimbs(const uint64_t* limbs, size_t count, uint64_t* out) const {
    for (size_t pi = 0; pi < k_; pi++) {
      const MontField64& f = fields_[pi];
      const uint64_t* base = limb_r2_[pi].data();
      uint64_t acc = 0;
      for (size_t j = 0; j < count; j++) {
        acc = f.Add(acc, f.Mul(limbs[j], base[j]));
      }
      out[pi] = acc;
    }
  }

  // O(k) CRT fold of Montgomery-form residues (strided by `stride`) into F.
  // Requires the represented integer v < 2^Capacity(k) < Q/2: then
  // Σ t_i/q_i = α + v/Q with v/Q < 1/2, and the double-precision sum is
  // within 2^-49 of it, so floor(y + 1/4) recovers α exactly.
  F Fold(const uint64_t* residues, size_t stride) const {
    double y = 0.0;
    F acc = F::Zero();
    for (size_t pi = 0; pi < k_; pi++) {
      uint64_t t = fields_[pi].Mul(residues[pi * stride], fold_c_[pi]);
      y += static_cast<double>(t) * inv_q_[pi];
      acc += F::FromUint(t) * m_mod_p_[pi];
    }
    size_t alpha = static_cast<size_t>(y + 0.25);
    assert(alpha <= k_);
    return acc - alpha_q_[alpha];
  }

  // Montgomery-form residues of p·2^s (a multiple of p covering 2^bound for
  // non-negative subtraction; s small, so the per-call Pow is negligible).
  void PadResidues(size_t s, uint64_t* out) const {
    for (size_t pi = 0; pi < k_; pi++) {
      const MontField64& f = fields_[pi];
      out[pi] = f.Mul(p_mont_[pi], f.Pow(two_mont_[pi], s));
    }
  }

  static const CrtBasis& Get(size_t k) {
    static std::vector<CrtBasis> cache = [] {
      std::vector<CrtBasis> all(kNumNttPrimes + 1);
      for (size_t kk = 1; kk <= kNumNttPrimes; kk++) {
        all[kk].Init(kk);
      }
      return all;
    }();
    assert(k >= 1 && k <= kNumNttPrimes);
    return cache[k];
  }

 private:
  void Init(size_t k) {
    k_ = k;
    fields_.reserve(k);
    limb_r2_.resize(k);
    fold_c_.resize(k);
    m_mod_p_.resize(k);
    inv_q_.resize(k);
    p_mont_.resize(k);
    two_mont_.resize(k);
    alpha_q_.resize(k + 1);

    F q_prod = F::One();  // Q mod p
    for (size_t i = 0; i < k; i++) {
      q_prod *= F::FromUint(kNttPrimes[i]);
    }
    for (size_t a = 0; a <= k; a++) {
      alpha_q_[a] = F::FromUint(a) * q_prod;
    }

    for (size_t pi = 0; pi < k; pi++) {
      fields_.emplace_back(kNttPrimes[pi]);
      const MontField64& f = fields_[pi];

      // limb_r2[j] = 2^(64j)·R² mod q: Mul(x, limb_r2[j]) = Mont(x·2^(64j)).
      limb_r2_[pi].resize(F::kLimbs);
      uint64_t base_mont = f.ToMont((~uint64_t{0}) % kNttPrimes[pi] + 1);
      uint64_t cur_mont = f.One();  // Mont(2^(64j))
      for (size_t j = 0; j < F::kLimbs; j++) {
        limb_r2_[pi][j] = f.ToMont(cur_mont);
        cur_mont = f.Mul(cur_mont, base_mont);
      }

      // fold_c = (Q/q_i)^{-1} mod q_i, standard form (so one Montgomery
      // multiply against a Montgomery-form residue yields t_i in standard
      // form), and m_mod_p = (Q/q_i) mod p.
      uint64_t others = f.One();
      F m_p = F::One();
      for (size_t j = 0; j < k; j++) {
        if (j == pi) {
          continue;
        }
        others = f.Mul(others, f.ToMont(kNttPrimes[j] % kNttPrimes[pi]));
        m_p *= F::FromUint(kNttPrimes[j]);
      }
      fold_c_[pi] = f.FromMont(f.Inverse(others));
      m_mod_p_[pi] = m_p;
      inv_q_[pi] = 1.0 / static_cast<double>(kNttPrimes[pi]);

      // Mont(p mod q_i) via the limb bases, and Mont(2) for pad powers.
      const auto& mod = F::kModulus;
      uint64_t acc = 0;
      for (size_t j = 0; j < F::kLimbs; j++) {
        acc = f.Add(acc, f.Mul(mod.limbs[j], limb_r2_[pi][j]));
      }
      p_mont_[pi] = acc;
      two_mont_[pi] = f.ToMont(2);
    }
  }

  size_t k_ = 0;
  std::vector<MontField64> fields_;
  std::vector<std::vector<uint64_t>> limb_r2_;  // [prime][limb]
  std::vector<uint64_t> fold_c_;
  std::vector<F> m_mod_p_;
  std::vector<F> alpha_q_;  // alpha_q[a] = a·Q mod p
  std::vector<double> inv_q_;
  std::vector<uint64_t> p_mont_;
  std::vector<uint64_t> two_mont_;
};

// Forward NTT images of a fixed residue polynomial at one transform size,
// cached so repeated products against the same operand (subproduct-tree
// nodes, the divisor inverse) pay one forward transform total.
struct NttImages {
  size_t log_n = 0;
  size_t src_len = 0;
  size_t src_bound_bits = 0;
  std::vector<std::vector<uint64_t>> img;  // [prime][2^log_n], Mont form

  bool empty() const { return img.empty(); }
};

// A dense polynomial in residue form: fixed explicit length (high
// coefficients may be zero — no trimming, so shapes stay uniform across a
// batch), per-prime Montgomery residue vectors, and the integer coefficient
// bound in bits. All operations are exact over the integers as long as
// bounds stay within basis capacity (asserted).
template <typename F>
class ResiduePoly {
 public:
  ResiduePoly() = default;

  size_t length() const { return len_; }
  size_t bound_bits() const { return bound_bits_; }
  const CrtBasis<F>& basis() const { return *basis_; }
  bool IsCanonical() const { return bound_bits_ <= F::kModulusBits; }
  const std::vector<uint64_t>& Residues(size_t pi) const { return r_[pi]; }

  // ----- conversions (the once-in / once-out contract) -----

  static ResiduePoly FromCoefficients(const F* c, size_t len,
                                      const CrtBasis<F>& basis,
                                      size_t workers) {
    ResiduePoly out = Make(basis, len, F::kModulusBits);
    size_t k = basis.k();
    ChunkedFor(len, workers, [&](size_t i) {
      // One canonical conversion per coefficient, hoisted out of the
      // per-prime loop (satellite fix: the old MulCrt redid it per prime).
      typename F::Repr rep = c[i].ToCanonical();
      uint64_t res[kNumNttPrimes];
      basis.ReduceLimbs(rep.limbs.data(), F::kLimbs, res);
      for (size_t pi = 0; pi < k; pi++) {
        out.r_[pi][i] = res[pi];
      }
    });
    return out;
  }

  std::vector<F> ToCoefficients(size_t workers) const {
    assert(basis_ != nullptr && bound_bits_ <= basis_->capacity_bits());
    std::vector<F> out(len_);
    ChunkedFor(len_, workers, [&](size_t i) {
      uint64_t res[kNumNttPrimes];
      for (size_t pi = 0; pi < basis_->k(); pi++) {
        res[pi] = r_[pi][i];
      }
      out[i] = basis_->Fold(res, 1);
    });
    return out;
  }

  F Coefficient(size_t i) const {
    assert(i < len_ && bound_bits_ <= basis_->capacity_bits());
    uint64_t res[kNumNttPrimes];
    for (size_t pi = 0; pi < basis_->k(); pi++) {
      res[pi] = r_[pi][i];
    }
    return basis_->Fold(res, 1);
  }

  // Folds to F and re-reduces in place, restoring canonical bounds. Called
  // between pipeline stages when the next product would overflow capacity.
  void Renormalize(size_t workers) {
    if (IsCanonical()) {
      return;
    }
    assert(bound_bits_ <= basis_->capacity_bits());
    size_t k = basis_->k();
    ChunkedFor(len_, workers, [&](size_t i) {
      uint64_t res[kNumNttPrimes];
      for (size_t pi = 0; pi < k; pi++) {
        res[pi] = r_[pi][i];
      }
      typename F::Repr rep = basis_->Fold(res, 1).ToCanonical();
      basis_->ReduceLimbs(rep.limbs.data(), F::kLimbs, res);
      for (size_t pi = 0; pi < k; pi++) {
        r_[pi][i] = res[pi];
      }
    });
    bound_bits_ = F::kModulusBits;
  }

  // ----- shape operations (length-preserving semantics, no trimming) -----

  // The first `count` coefficients; pads with zeros if count > length.
  ResiduePoly Truncate(size_t count) const {
    ResiduePoly out = Make(*basis_, count, bound_bits_);
    size_t copy = std::min(count, len_);
    for (size_t pi = 0; pi < basis_->k(); pi++) {
      std::copy(r_[pi].begin(), r_[pi].begin() + copy, out.r_[pi].begin());
    }
    return out;
  }

  // rev_k(f) = x^k f(1/x): out[j] = coeff(k - j). Requires len <= k + 1.
  ResiduePoly Reverse(size_t k) const {
    assert(len_ <= k + 1);
    ResiduePoly out = Make(*basis_, k + 1, bound_bits_);
    for (size_t pi = 0; pi < basis_->k(); pi++) {
      for (size_t i = 0; i < len_; i++) {
        out.r_[pi][k - i] = r_[pi][i];
      }
    }
    return out;
  }

  // Zero/degree tests require canonical bounds: after a padded subtraction
  // the residues carry multiples of p that vanish mod p but not mod Q.
  bool IsZero() const {
    assert(IsCanonical());
    for (size_t pi = 0; pi < basis_->k(); pi++) {
      for (uint64_t v : r_[pi]) {
        if (v != 0) {
          return false;
        }
      }
    }
    return true;
  }

  long Degree() const {
    assert(IsCanonical());
    for (size_t i = len_; i-- > 0;) {
      for (size_t pi = 0; pi < basis_->k(); pi++) {
        if (r_[pi][i] != 0) {
          return static_cast<long>(i);
        }
      }
    }
    return -1;
  }

  // ----- arithmetic -----

  static ResiduePoly Add(const ResiduePoly& a, const ResiduePoly& b,
                         size_t workers) {
    assert(a.basis_ == b.basis_);
    size_t out_len = std::max(a.len_, b.len_);
    ResiduePoly out =
        Make(*a.basis_, out_len, std::max(a.bound_bits_, b.bound_bits_) + 1);
    assert(out.bound_bits_ <= a.basis_->capacity_bits());
    ParallelFor(a.basis_->k(), workers, [&](size_t pi) {
      const MontField64& f = a.basis_->field(pi);
      for (size_t i = 0; i < out_len; i++) {
        uint64_t av = i < a.len_ ? a.r_[pi][i] : 0;
        uint64_t bv = i < b.len_ ? b.r_[pi][i] : 0;
        out.r_[pi][i] = f.Add(av, bv);
      }
    });
    return out;
  }

  // a - b, kept non-negative by adding M = p·2^s >= 2^bound(b) to every
  // coefficient (M ≡ 0 mod p, so the folded value is unchanged).
  static ResiduePoly Sub(const ResiduePoly& a, const ResiduePoly& b,
                         size_t workers) {
    assert(a.basis_ == b.basis_);
    const CrtBasis<F>& basis = *a.basis_;
    size_t s = b.bound_bits_ - std::min(b.bound_bits_, F::kModulusBits) + 1;
    size_t out_len = std::max(a.len_, b.len_);
    size_t bound = std::max(a.bound_bits_, b.bound_bits_ + 1) + 1;
    assert(bound <= basis.capacity_bits());
    uint64_t pad[kNumNttPrimes];
    basis.PadResidues(s, pad);
    ResiduePoly out = Make(basis, out_len, bound);
    ParallelFor(basis.k(), workers, [&](size_t pi) {
      const MontField64& f = basis.field(pi);
      for (size_t i = 0; i < out_len; i++) {
        uint64_t av = i < a.len_ ? a.r_[pi][i] : 0;
        uint64_t bv = i < b.len_ ? b.r_[pi][i] : 0;
        out.r_[pi][i] = f.Sub(f.Add(av, pad[pi]), bv);
      }
    });
    return out;
  }

  static ResiduePoly Mul(const ResiduePoly& a, const ResiduePoly& b,
                         size_t workers) {
    assert(a.basis_ == b.basis_ && a.len_ > 0 && b.len_ > 0);
    const CrtBasis<F>& basis = *a.basis_;
    size_t out_len = a.len_ + b.len_ - 1;
    size_t log_n = CeilLog2(out_len);
    size_t n = size_t{1} << log_n;
    size_t bound =
        a.bound_bits_ + b.bound_bits_ + CeilLog2(std::min(a.len_, b.len_));
    assert(bound <= basis.capacity_bits());
    ResiduePoly out = Make(basis, out_len, bound);
    obs::MetricAdd("ntt.forward", 2 * basis.k());
    obs::MetricAdd("ntt.inverse", basis.k());
    obs::MetricObserve("ntt.points", n);
    ParallelFor(basis.k(), workers, [&](size_t pi) {
      const MontField64& f = basis.field(pi);
      std::vector<uint64_t> fa(n, 0), fb(n, 0);
      std::copy(a.r_[pi].begin(), a.r_[pi].end(), fa.begin());
      std::copy(b.r_[pi].begin(), b.r_[pi].end(), fb.begin());
      NttForward(pi, fa.data(), log_n);
      NttForward(pi, fb.data(), log_n);
      for (size_t i = 0; i < n; i++) {
        fa[i] = f.Mul(fa[i], fb[i]);
      }
      NttInverse(pi, fa.data(), log_n);
      std::copy(fa.begin(), fa.begin() + out_len, out.r_[pi].begin());
    });
    return out;
  }

  // Forward images at a fixed size, for reuse across many products.
  NttImages ForwardImages(size_t log_n, size_t workers) const {
    size_t n = size_t{1} << log_n;
    assert(len_ <= n);
    NttImages im;
    im.log_n = log_n;
    im.src_len = len_;
    im.src_bound_bits = bound_bits_;
    im.img.resize(basis_->k());
    obs::MetricAdd("ntt.forward", basis_->k());
    ParallelFor(basis_->k(), workers, [&](size_t pi) {
      im.img[pi].assign(n, 0);
      std::copy(r_[pi].begin(), r_[pi].end(), im.img[pi].begin());
      NttForward(pi, im.img[pi].data(), log_n);
    });
    return im;
  }

  // a ⊛ img, keeping the low out_len coefficients of the full product (the
  // transform size must cover the full product so no cyclic wrap occurs).
  static ResiduePoly MulImages(const ResiduePoly& a, const NttImages& bimg,
                               size_t out_len, size_t workers) {
    const CrtBasis<F>& basis = *a.basis_;
    size_t log_n = bimg.log_n;
    size_t n = size_t{1} << log_n;
    assert(a.len_ + bimg.src_len - 1 <= n && out_len <= n);
    size_t bound = a.bound_bits_ + bimg.src_bound_bits +
                   CeilLog2(std::min(a.len_, bimg.src_len));
    assert(bound <= basis.capacity_bits());
    ResiduePoly out = Make(basis, out_len, bound);
    obs::MetricAdd("ntt.forward", basis.k());
    obs::MetricAdd("ntt.inverse", basis.k());
    obs::MetricObserve("ntt.points", n);
    ParallelFor(basis.k(), workers, [&](size_t pi) {
      const MontField64& f = basis.field(pi);
      std::vector<uint64_t> fa(n, 0);
      std::copy(a.r_[pi].begin(), a.r_[pi].end(), fa.begin());
      NttForward(pi, fa.data(), log_n);
      const uint64_t* bi = bimg.img[pi].data();
      for (size_t i = 0; i < n; i++) {
        fa[i] = f.Mul(fa[i], bi[i]);
      }
      NttInverse(pi, fa.data(), log_n);
      std::copy(fa.begin(), fa.begin() + out_len, out.r_[pi].begin());
    });
    return out;
  }

  // u ⊛ ximg + v ⊛ yimg with a single inverse transform per prime — the
  // subproduct-tree combine step (parent = left·m_right + right·m_left).
  static ResiduePoly FusedMulAdd(const ResiduePoly& u, const NttImages& ximg,
                                 const ResiduePoly& v, const NttImages& yimg,
                                 size_t out_len, size_t workers) {
    assert(u.basis_ == v.basis_ && ximg.log_n == yimg.log_n);
    const CrtBasis<F>& basis = *u.basis_;
    size_t log_n = ximg.log_n;
    size_t n = size_t{1} << log_n;
    assert(u.len_ + ximg.src_len - 1 <= n);
    assert(v.len_ + yimg.src_len - 1 <= n);
    assert(out_len <= n);
    size_t bound_ux = u.bound_bits_ + ximg.src_bound_bits +
                      CeilLog2(std::min(u.len_, ximg.src_len));
    size_t bound_vy = v.bound_bits_ + yimg.src_bound_bits +
                      CeilLog2(std::min(v.len_, yimg.src_len));
    size_t bound = std::max(bound_ux, bound_vy) + 1;
    assert(bound <= basis.capacity_bits());
    ResiduePoly out = Make(basis, out_len, bound);
    obs::MetricAdd("ntt.forward", 2 * basis.k());
    obs::MetricAdd("ntt.inverse", basis.k());
    obs::MetricObserve("ntt.points", n);
    ParallelFor(basis.k(), workers, [&](size_t pi) {
      const MontField64& f = basis.field(pi);
      std::vector<uint64_t> fu(n, 0), fv(n, 0);
      std::copy(u.r_[pi].begin(), u.r_[pi].end(), fu.begin());
      std::copy(v.r_[pi].begin(), v.r_[pi].end(), fv.begin());
      NttForward(pi, fu.data(), log_n);
      NttForward(pi, fv.data(), log_n);
      const uint64_t* xi = ximg.img[pi].data();
      const uint64_t* yi = yimg.img[pi].data();
      for (size_t i = 0; i < n; i++) {
        fu[i] = f.Add(f.Mul(fu[i], xi[i]), f.Mul(fv[i], yi[i]));
      }
      NttInverse(pi, fu.data(), log_n);
      std::copy(fu.begin(), fu.begin() + out_len, out.r_[pi].begin());
    });
    return out;
  }

 private:
  static ResiduePoly Make(const CrtBasis<F>& basis, size_t len, size_t bound) {
    ResiduePoly out;
    out.basis_ = &basis;
    out.len_ = len;
    out.bound_bits_ = bound;
    out.r_.resize(basis.k());
    for (auto& v : out.r_) {
      v.assign(len, 0);
    }
    return out;
  }

  // Per-coefficient work parallelized in contiguous chunks: fold/reduce of
  // coefficient i touches every prime row at index i, so the grain is the
  // coefficient, not the prime.
  template <typename Fn>
  static void ChunkedFor(size_t len, size_t workers, const Fn& fn) {
    constexpr size_t kChunk = 512;
    size_t chunks = (len + kChunk - 1) / kChunk;
    ParallelFor(chunks, workers, [&](size_t c) {
      size_t end = std::min(len, (c + 1) * kChunk);
      for (size_t i = c * kChunk; i < end; i++) {
        fn(i);
      }
    });
  }

  const CrtBasis<F>* basis_ = nullptr;
  size_t len_ = 0;
  size_t bound_bits_ = 0;
  std::vector<std::vector<uint64_t>> r_;  // [prime][coeff], Montgomery form
};

}  // namespace zaatar

#endif  // SRC_POLY_RESIDUE_H_
