// Quasi-linear polynomial algorithms: Newton power-series inversion, division
// with remainder, and subproduct-tree multipoint evaluation/interpolation
// (von zur Gathen & Gerhard, ch. 9-10).
//
// These realize the prover steps of the paper's Appendix A.3: interpolating
// A(t), B(t), C(t) from their evaluations at the sigma_j, multiplying them,
// and dividing P_w(t) by D(t) — total cost ~ 3·f·|C|·log^2|C|.

#ifndef SRC_POLY_ALGORITHMS_H_
#define SRC_POLY_ALGORITHMS_H_

#include <cassert>
#include <cstddef>
#include <utility>
#include <vector>

#include "src/field/prime_field.h"
#include "src/poly/polynomial.h"

namespace zaatar {

// Inverse of f modulo x^count (requires f(0) != 0). Newton iteration:
// g <- g(2 - fg), doubling precision each round.
template <typename F>
Polynomial<F> NewtonInverse(const Polynomial<F>& f, size_t count) {
  assert(!f.IsZero() && !f.CoefficientOrZero(0).IsZero());
  Polynomial<F> g = Polynomial<F>::Constant(f.CoefficientOrZero(0).Inverse());
  size_t precision = 1;
  const Polynomial<F> two = Polynomial<F>::Constant(F::FromUint(2));
  while (precision < count) {
    precision = std::min(2 * precision, count);
    Polynomial<F> fg = (f.Truncate(precision) * g).Truncate(precision);
    g = (g * (two - fg)).Truncate(precision);
  }
  return g.Truncate(count);
}

template <typename F>
struct DivRemResult {
  Polynomial<F> quotient;
  Polynomial<F> remainder;
};

// Division with remainder: a = q·b + r with deg r < deg b. Quasi-linear via
// reversal + Newton inversion.
template <typename F>
DivRemResult<F> DivRem(const Polynomial<F>& a, const Polynomial<F>& b) {
  assert(!b.IsZero());
  if (a.Degree() < b.Degree()) {
    return {Polynomial<F>::Zero(), a};
  }
  size_t da = static_cast<size_t>(a.Degree());
  size_t db = static_cast<size_t>(b.Degree());
  size_t m = da - db + 1;
  Polynomial<F> rev_b = b.Reverse(db);
  Polynomial<F> inv = NewtonInverse(rev_b, m);
  Polynomial<F> q_rev = (a.Reverse(da) * inv).Truncate(m);
  Polynomial<F> q = q_rev.Reverse(m - 1);
  Polynomial<F> r = a - q * b;
  assert(r.Degree() < b.Degree());
  return {std::move(q), std::move(r)};
}

// Subproduct tree over a fixed point set. Level 0 holds the linear leaves
// (x - u_i); each higher level holds pairwise products (an odd trailing node
// is promoted unchanged). Supports multipoint evaluation and interpolation in
// O(M(n) log n).
template <typename F>
class SubproductTree {
 public:
  explicit SubproductTree(std::vector<F> points) : points_(std::move(points)) {
    assert(!points_.empty());
    std::vector<Polynomial<F>> level;
    level.reserve(points_.size());
    for (const F& u : points_) {
      level.push_back(Polynomial<F>::Linear(u));
    }
    levels_.push_back(std::move(level));
    while (levels_.back().size() > 1) {
      const auto& prev = levels_.back();
      std::vector<Polynomial<F>> next;
      next.reserve((prev.size() + 1) / 2);
      for (size_t i = 0; i + 1 < prev.size(); i += 2) {
        next.push_back(prev[i] * prev[i + 1]);
      }
      if (prev.size() % 2 == 1) {
        next.push_back(prev.back());
      }
      levels_.push_back(std::move(next));
    }
  }

  const std::vector<F>& points() const { return points_; }

  // prod_i (x - u_i).
  const Polynomial<F>& Root() const { return levels_.back()[0]; }

  // f(u_i) for every point, in point order.
  std::vector<F> EvaluateAll(const Polynomial<F>& f) const {
    std::vector<F> out(points_.size());
    Polynomial<F> top = f;
    if (f.Degree() >= Root().Degree()) {
      top = DivRem(f, Root()).remainder;
    }
    Down(levels_.size() - 1, 0, top, &out);
    return out;
  }

  // The unique polynomial of degree < n with P(u_i) = values[i]. Requires
  // distinct points (guaranteed if construction points were distinct).
  Polynomial<F> Interpolate(const std::vector<F>& values) const {
    assert(values.size() == points_.size());
    // c_i = values[i] / m'(u_i). The weights depend only on the points and
    // are cached (the QAP prover interpolates A, B, C over the same tree).
    const std::vector<F>& weights = InterpolationWeights();
    std::vector<Polynomial<F>> nodes;
    nodes.reserve(points_.size());
    for (size_t i = 0; i < points_.size(); i++) {
      nodes.push_back(Polynomial<F>::Constant(values[i] * weights[i]));
    }
    // Combine up: parent = left * (right subtree poly) + right * (left
    // subtree poly); this accumulates sum_i c_i * m(x)/(x - u_i).
    for (size_t l = 0; l + 1 < levels_.size(); l++) {
      const auto& polys = levels_[l];
      std::vector<Polynomial<F>> next;
      next.reserve((nodes.size() + 1) / 2);
      for (size_t i = 0; i + 1 < nodes.size(); i += 2) {
        next.push_back(nodes[i] * polys[i + 1] + nodes[i + 1] * polys[i]);
      }
      if (nodes.size() % 2 == 1) {
        next.push_back(nodes.back());
      }
      nodes = std::move(next);
    }
    return nodes[0];
  }

  // 1 / m'(u_i) for every point (computed once, then cached).
  const std::vector<F>& InterpolationWeights() const {
    if (interp_weights_.empty()) {
      Polynomial<F> deriv = Root().Derivative();
      interp_weights_ = EvaluateAll(deriv);
      BatchInvert(interp_weights_.data(), interp_weights_.size());
    }
    return interp_weights_;
  }

 private:
  void Down(size_t level, size_t index, const Polynomial<F>& r,
            std::vector<F>* out) const {
    if (level == 0) {
      (*out)[index] = r.Evaluate(points_[index]);
      return;
    }
    size_t left = 2 * index;
    size_t right = 2 * index + 1;
    const auto& child_level = levels_[level - 1];
    if (right >= child_level.size()) {
      Down(level - 1, left, r, out);  // promoted node, nothing to reduce
      return;
    }
    Down(level - 1, left, DivRem(r, child_level[left]).remainder, out);
    Down(level - 1, right, DivRem(r, child_level[right]).remainder, out);
  }

  std::vector<F> points_;
  std::vector<std::vector<Polynomial<F>>> levels_;
  mutable std::vector<F> interp_weights_;
};

// Quadratic-time Lagrange interpolation, for cross-checking and tiny inputs.
template <typename F>
Polynomial<F> InterpolateNaive(const std::vector<F>& points,
                               const std::vector<F>& values) {
  assert(points.size() == values.size());
  Polynomial<F> acc = Polynomial<F>::Zero();
  for (size_t i = 0; i < points.size(); i++) {
    Polynomial<F> num = Polynomial<F>::Constant(F::One());
    F den = F::One();
    for (size_t j = 0; j < points.size(); j++) {
      if (j == i) {
        continue;
      }
      num = num * Polynomial<F>::Linear(points[j]);
      den *= points[i] - points[j];
    }
    acc = acc + num * (values[i] * den.Inverse());
  }
  return acc;
}

}  // namespace zaatar

#endif  // SRC_POLY_ALGORITHMS_H_
