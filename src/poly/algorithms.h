// Quasi-linear polynomial algorithms: Newton power-series inversion, division
// with remainder, and subproduct-tree multipoint evaluation/interpolation
// (von zur Gathen & Gerhard, ch. 9-10).
//
// These realize the prover steps of the paper's Appendix A.3: interpolating
// A(t), B(t), C(t) from their evaluations at the sigma_j, multiplying them,
// and dividing P_w(t) by D(t) — total cost ~ 3·f·|C|·log^2|C|.

#ifndef SRC_POLY_ALGORITHMS_H_
#define SRC_POLY_ALGORITHMS_H_

#include <cassert>
#include <cstddef>
#include <utility>
#include <vector>

#include "src/field/prime_field.h"
#include "src/poly/polynomial.h"
#include "src/poly/residue.h"

namespace zaatar {

// Ingests a coefficient-form polynomial into residue form, zero-padded to an
// explicit length (residue pipelines keep uniform shapes; see residue.h).
template <typename F>
ResiduePoly<F> ToResidue(const Polynomial<F>& p, size_t len,
                         const CrtBasis<F>& basis, size_t workers) {
  assert(p.CoefficientCount() <= len);
  std::vector<F> c(len, F::Zero());
  std::copy(p.Coefficients().begin(), p.Coefficients().end(), c.begin());
  return ResiduePoly<F>::FromCoefficients(c.data(), len, basis, workers);
}

// Inverse of f modulo x^count (requires f(0) != 0). Newton iteration:
// g <- g(2 - fg), doubling precision each round.
template <typename F>
Polynomial<F> NewtonInverse(const Polynomial<F>& f, size_t count) {
  assert(!f.IsZero() && !f.CoefficientOrZero(0).IsZero());
  Polynomial<F> g = Polynomial<F>::Constant(f.CoefficientOrZero(0).Inverse());
  size_t precision = 1;
  const Polynomial<F> two = Polynomial<F>::Constant(F::FromUint(2));
  while (precision < count) {
    precision = std::min(2 * precision, count);
    Polynomial<F> fg = (f.Truncate(precision) * g).Truncate(precision);
    g = (g * (two - fg)).Truncate(precision);
  }
  return g.Truncate(count);
}

template <typename F>
struct DivRemResult {
  Polynomial<F> quotient;
  Polynomial<F> remainder;
};

// Division with remainder: a = q·b + r with deg r < deg b. Quasi-linear via
// reversal + Newton inversion.
template <typename F>
DivRemResult<F> DivRem(const Polynomial<F>& a, const Polynomial<F>& b) {
  assert(!b.IsZero());
  if (a.Degree() < b.Degree()) {
    return {Polynomial<F>::Zero(), a};
  }
  size_t da = static_cast<size_t>(a.Degree());
  size_t db = static_cast<size_t>(b.Degree());
  size_t m = da - db + 1;
  Polynomial<F> rev_b = b.Reverse(db);
  Polynomial<F> inv = NewtonInverse(rev_b, m);
  Polynomial<F> q_rev = (a.Reverse(da) * inv).Truncate(m);
  Polynomial<F> q = q_rev.Reverse(m - 1);
  Polynomial<F> r = a - q * b;
  assert(r.Degree() < b.Degree());
  return {std::move(q), std::move(r)};
}

// Residue-domain Newton inversion: inverse of f modulo x^count without
// leaving residue form. Requires canonical bounds and f(0) != 0; the basis
// must carry ~3 bits of headroom over the plain product bound (the 2 - f·g
// step costs two bits of padding before the next product). Callers sizing a
// basis for a division pipeline should budget bound = 2B + log2(n) + 4.
template <typename F>
ResiduePoly<F> ResidueNewtonInverse(const ResiduePoly<F>& f, size_t count,
                                    size_t workers) {
  assert(f.IsCanonical() && f.length() > 0);
  F f0 = f.Coefficient(0);
  assert(!f0.IsZero());
  const CrtBasis<F>& basis = f.basis();
  F g0 = f0.Inverse();
  ResiduePoly<F> g = ResiduePoly<F>::FromCoefficients(&g0, 1, basis, workers);
  F two_f = F::FromUint(2);
  ResiduePoly<F> two =
      ResiduePoly<F>::FromCoefficients(&two_f, 1, basis, workers);
  size_t precision = 1;
  while (precision < count) {
    precision = std::min(2 * precision, count);
    ResiduePoly<F> fg =
        ResiduePoly<F>::Mul(f.Truncate(std::min(precision, f.length())), g,
                            workers)
            .Truncate(precision);
    fg.Renormalize(workers);
    ResiduePoly<F> t = ResiduePoly<F>::Sub(two, fg, workers);
    g = ResiduePoly<F>::Mul(g, t, workers).Truncate(precision);
    g.Renormalize(workers);
  }
  return g.Truncate(count);
}

template <typename F>
struct ResidueDivRemResult {
  ResiduePoly<F> quotient;
  ResiduePoly<F> remainder;  // canonical; zero iff the division was exact
  bool exact;
};

// Division with remainder in residue form: a = q·b + r, deg r < deg b, via
// reversal + ResidueNewtonInverse — the same algorithm as DivRem but the
// operands, quotient, and remainder never leave the residue domain. The QAP
// prover runs the specialization of this with a cached inverse of rev(D)
// (Qap::ComputeH); this general form backs it in tests.
template <typename F>
ResidueDivRemResult<F> ResidueDivRem(const ResiduePoly<F>& a,
                                     const ResiduePoly<F>& b,
                                     size_t workers) {
  assert(a.IsCanonical() && b.IsCanonical());
  long da = a.Degree();
  long db = b.Degree();
  assert(db >= 0 && "division by zero polynomial");
  ResidueDivRemResult<F> out;
  if (da < db) {
    F zero = F::Zero();
    out.quotient =
        ResiduePoly<F>::FromCoefficients(&zero, 1, a.basis(), workers);
    out.remainder = a.Truncate(a.length());
    out.exact = a.IsZero();
    return out;
  }
  size_t m = static_cast<size_t>(da - db) + 1;
  ResiduePoly<F> rev_b = b.Truncate(db + 1).Reverse(db);
  ResiduePoly<F> inv = ResidueNewtonInverse(rev_b, m, workers);
  ResiduePoly<F> rev_a = a.Truncate(da + 1).Reverse(da).Truncate(m);
  ResiduePoly<F> q_rev =
      ResiduePoly<F>::Mul(rev_a, inv, workers).Truncate(m);
  q_rev.Renormalize(workers);
  out.quotient = q_rev.Reverse(m - 1);
  ResiduePoly<F> qb =
      ResiduePoly<F>::Mul(out.quotient, b.Truncate(db + 1), workers);
  ResiduePoly<F> r = ResiduePoly<F>::Sub(a, qb, workers);
  r.Renormalize(workers);
  out.remainder = r.Truncate(db);
  out.exact = out.remainder.IsZero();
  return out;
}

// Subproduct tree over a fixed point set. Level 0 holds the linear leaves
// (x - u_i); each higher level holds pairwise products (an odd trailing node
// is promoted unchanged). Supports multipoint evaluation and interpolation in
// O(M(n) log n).
template <typename F>
class SubproductTree {
 public:
  explicit SubproductTree(std::vector<F> points) : points_(std::move(points)) {
    assert(!points_.empty());
    std::vector<Polynomial<F>> level;
    level.reserve(points_.size());
    for (const F& u : points_) {
      level.push_back(Polynomial<F>::Linear(u));
    }
    levels_.push_back(std::move(level));
    while (levels_.back().size() > 1) {
      const auto& prev = levels_.back();
      std::vector<Polynomial<F>> next;
      next.reserve((prev.size() + 1) / 2);
      for (size_t i = 0; i + 1 < prev.size(); i += 2) {
        next.push_back(prev[i] * prev[i + 1]);
      }
      if (prev.size() % 2 == 1) {
        next.push_back(prev.back());
      }
      levels_.push_back(std::move(next));
    }
  }

  const std::vector<F>& points() const { return points_; }

  // prod_i (x - u_i).
  const Polynomial<F>& Root() const { return levels_.back()[0]; }

  // f(u_i) for every point, in point order.
  std::vector<F> EvaluateAll(const Polynomial<F>& f) const {
    std::vector<F> out(points_.size());
    Polynomial<F> top = f;
    if (f.Degree() >= Root().Degree()) {
      top = DivRem(f, Root()).remainder;
    }
    Down(levels_.size() - 1, 0, top, &out);
    return out;
  }

  // The unique polynomial of degree < n with P(u_i) = values[i]. Requires
  // distinct points (guaranteed if construction points were distinct).
  Polynomial<F> Interpolate(const std::vector<F>& values) const {
    assert(values.size() == points_.size());
    // c_i = values[i] / m'(u_i). The weights depend only on the points and
    // are cached (the QAP prover interpolates A, B, C over the same tree).
    const std::vector<F>& weights = InterpolationWeights();
    std::vector<Polynomial<F>> nodes;
    nodes.reserve(points_.size());
    for (size_t i = 0; i < points_.size(); i++) {
      nodes.push_back(Polynomial<F>::Constant(values[i] * weights[i]));
    }
    // Combine up: parent = left * (right subtree poly) + right * (left
    // subtree poly); this accumulates sum_i c_i * m(x)/(x - u_i).
    for (size_t l = 0; l + 1 < levels_.size(); l++) {
      const auto& polys = levels_[l];
      std::vector<Polynomial<F>> next;
      next.reserve((nodes.size() + 1) / 2);
      for (size_t i = 0; i + 1 < nodes.size(); i += 2) {
        next.push_back(nodes[i] * polys[i + 1] + nodes[i + 1] * polys[i]);
      }
      if (nodes.size() % 2 == 1) {
        next.push_back(nodes.back());
      }
      nodes = std::move(next);
    }
    return nodes[0];
  }

  // Residue-domain interpolation: same value as Interpolate (the unique
  // degree-< n polynomial through the values), computed without leaving
  // residue form above the naive-multiply threshold. The bottom levels
  // (node polynomials of <= kResidueSwitchLen coefficients) combine in F
  // with schoolbook products — cheaper than transforms at those sizes —
  // then each higher level runs one fused mul-add per pair against the
  // cached forward images of this level's subtree polynomials (built once,
  // reused across A/B/C and across every instance of a batch), followed by
  // a renormalize so bounds stay canonical into the next level.
  ResiduePoly<F> InterpolateResidue(const std::vector<F>& values,
                                    const CrtBasis<F>& basis,
                                    size_t workers) const {
    assert(values.size() == points_.size());
    const std::vector<F>& weights = InterpolationWeights();
    std::vector<Polynomial<F>> fnodes;
    fnodes.reserve(points_.size());
    for (size_t i = 0; i < points_.size(); i++) {
      fnodes.push_back(Polynomial<F>::Constant(values[i] * weights[i]));
    }
    const size_t switch_level = ResidueSwitchLevel();
    for (size_t l = 0; l < switch_level; l++) {
      const auto& polys = levels_[l];
      std::vector<Polynomial<F>> next;
      next.reserve((fnodes.size() + 1) / 2);
      for (size_t i = 0; i + 1 < fnodes.size(); i += 2) {
        next.push_back(fnodes[i] * polys[i + 1] + fnodes[i + 1] * polys[i]);
      }
      if (fnodes.size() % 2 == 1) {
        next.push_back(fnodes.back());
      }
      fnodes = std::move(next);
    }
    // Ingest at each subtree's node capacity (deg < deg m_i), so shapes are
    // uniform regardless of zero values.
    const auto& sw_polys = levels_[switch_level];
    assert(fnodes.size() == sw_polys.size());
    std::vector<ResiduePoly<F>> nodes;
    nodes.reserve(fnodes.size());
    for (size_t i = 0; i < fnodes.size(); i++) {
      nodes.push_back(ToResidue(fnodes[i],
                                sw_polys[i].CoefficientCount() - 1, basis,
                                workers));
    }
    for (size_t l = switch_level; l + 1 < levels_.size(); l++) {
      const auto& imgs = ResidueLevelImages(l, basis, workers);
      const auto& polys = levels_[l];
      std::vector<ResiduePoly<F>> next;
      next.reserve((nodes.size() + 1) / 2);
      for (size_t i = 0; i + 1 < nodes.size(); i += 2) {
        size_t out_len = polys[i].CoefficientCount() +
                         polys[i + 1].CoefficientCount() - 2;
        ResiduePoly<F> parent = ResiduePoly<F>::FusedMulAdd(
            nodes[i], imgs[i + 1], nodes[i + 1], imgs[i], out_len, workers);
        parent.Renormalize(workers);
        next.push_back(std::move(parent));
      }
      if (nodes.size() % 2 == 1) {
        next.push_back(std::move(nodes.back()));
      }
      nodes = std::move(next);
    }
    return std::move(nodes[0]);
  }

  // Builds the per-level residue images eagerly (single-threaded contract,
  // like the other lazy caches here): batch pipelines call this once before
  // fanning instances out so the lazy build never races.
  void WarmResidueImages(const CrtBasis<F>& basis, size_t workers) const {
    for (size_t l = ResidueSwitchLevel(); l + 1 < levels_.size(); l++) {
      ResidueLevelImages(l, basis, workers);
    }
  }

  // 1 / m'(u_i) for every point (computed once, then cached).
  const std::vector<F>& InterpolationWeights() const {
    if (interp_weights_.empty()) {
      Polynomial<F> deriv = Root().Derivative();
      interp_weights_ = EvaluateAll(deriv);
      BatchInvert(interp_weights_.data(), interp_weights_.size());
    }
    return interp_weights_;
  }

 private:
  // Node polynomials at or below this coefficient count multiply faster
  // with schoolbook than with transforms (matches Polynomial's naive-mul
  // threshold).
  static constexpr size_t kResidueSwitchLen = 32;

  // First level whose subtree polynomials exceed the threshold — the level
  // where InterpolateResidue switches from F combines to residue combines.
  size_t ResidueSwitchLevel() const {
    size_t l = 0;
    while (l + 1 < levels_.size() &&
           levels_[l][0].CoefficientCount() <= kResidueSwitchLen) {
      l++;
    }
    return l;
  }

  // Forward images of level l's subtree polynomials at each pair's combine
  // size, cached per basis. Trailing promoted nodes carry no image.
  const std::vector<NttImages>& ResidueLevelImages(size_t l,
                                                   const CrtBasis<F>& basis,
                                                   size_t workers) const {
    if (residue_basis_ != &basis) {
      residue_images_.assign(levels_.size(), {});
      residue_basis_ = &basis;
    }
    std::vector<NttImages>& slot = residue_images_[l];
    if (slot.empty()) {
      const auto& polys = levels_[l];
      slot.resize(polys.size());
      for (size_t i = 0; i + 1 < polys.size(); i += 2) {
        size_t out_len = polys[i].CoefficientCount() +
                         polys[i + 1].CoefficientCount() - 2;
        size_t log_n = CeilLog2(out_len);
        slot[i] = ToResidue(polys[i], polys[i].CoefficientCount(), basis,
                            workers)
                      .ForwardImages(log_n, workers);
        slot[i + 1] = ToResidue(polys[i + 1],
                                polys[i + 1].CoefficientCount(), basis,
                                workers)
                          .ForwardImages(log_n, workers);
      }
    }
    return slot;
  }

  void Down(size_t level, size_t index, const Polynomial<F>& r,
            std::vector<F>* out) const {
    if (level == 0) {
      (*out)[index] = r.Evaluate(points_[index]);
      return;
    }
    size_t left = 2 * index;
    size_t right = 2 * index + 1;
    const auto& child_level = levels_[level - 1];
    if (right >= child_level.size()) {
      Down(level - 1, left, r, out);  // promoted node, nothing to reduce
      return;
    }
    Down(level - 1, left, DivRem(r, child_level[left]).remainder, out);
    Down(level - 1, right, DivRem(r, child_level[right]).remainder, out);
  }

  std::vector<F> points_;
  std::vector<std::vector<Polynomial<F>>> levels_;
  mutable std::vector<F> interp_weights_;
  mutable std::vector<std::vector<NttImages>> residue_images_;
  mutable const CrtBasis<F>* residue_basis_ = nullptr;
};

// Quadratic-time Lagrange interpolation, for cross-checking and tiny inputs.
template <typename F>
Polynomial<F> InterpolateNaive(const std::vector<F>& points,
                               const std::vector<F>& values) {
  assert(points.size() == values.size());
  Polynomial<F> acc = Polynomial<F>::Zero();
  for (size_t i = 0; i < points.size(); i++) {
    Polynomial<F> num = Polynomial<F>::Constant(F::One());
    F den = F::One();
    for (size_t j = 0; j < points.size(); j++) {
      if (j == i) {
        continue;
      }
      num = num * Polynomial<F>::Linear(points[j]);
      den *= points[i] - points[j];
    }
    acc = acc + num * (values[i] * den.Inverse());
  }
  return acc;
}

}  // namespace zaatar

#endif  // SRC_POLY_ALGORITHMS_H_
