// Additively homomorphic ("exponent") ElGamal over prime-order subgroups of
// Z_p^* with 1024-bit p — the encryption used by the linear commitment
// primitive (paper §2.2, "Ginger uses ElGamal [25] with 1024-bit keys").
//
// The crucial parameter choice (inherited from Pepper): the subgroup order IS
// the field modulus q of the verified-computation field F. Plaintexts are
// field elements placed in the exponent, Enc(m) = (g^r, h^r · g^m), so
// ciphertext products add plaintexts *in F* and scalar powers multiply them
// by field constants — exactly the homomorphism the commitment protocol
// needs. Decryption recovers g^m (not m); the protocol only ever compares
// group elements, never extracts discrete logs.
//
// Groups for both field sizes were generated offline (p = k·q + 1 prime,
// g = h^((p-1)/q) of order q) and are validated by tests/elgamal_test.cc.

#ifndef SRC_CRYPTO_ELGAMAL_H_
#define SRC_CRYPTO_ELGAMAL_H_

#include <algorithm>
#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/crypto/multiexp.h"
#include "src/crypto/prg.h"
#include "src/field/fields.h"
#include "src/field/ifma52.h"
#include "src/field/prime_field.h"
#include "src/util/parallel_for.h"

namespace zaatar {

// 1024-bit group modulus for the q = 2^128 - 159 subgroup.
struct ElGamalP128Config {
  static constexpr size_t kLimbs = 16;
  static constexpr std::array<uint64_t, 16> kModulus = {
      0x4bc01b31ccd182a9ULL, 0xeb623fcc0b5de92eULL, 0x7adf26de2a33c25fULL,
      0x358ab81ff99bbfdaULL, 0x16133ab59a2a30d1ULL, 0x5ffef0d50ff6849eULL,
      0x6877f8f5314e5366ULL, 0x1dbd8b62df8a99f2ULL, 0x7c431f5223d6521eULL,
      0x5f817adee4349357ULL, 0x708296c991e98fccULL, 0xaaf8b030f97df761ULL,
      0x00ce2b05e583f000ULL, 0x42c2c25060072ca8ULL, 0x6c1130b75d49289bULL,
      0xe0862c196157b030ULL};
  static constexpr const char* kName = "ElGamalP128";
};

// 1024-bit group modulus for the q = 2^220 - 77 subgroup.
struct ElGamalP220Config {
  static constexpr size_t kLimbs = 16;
  static constexpr std::array<uint64_t, 16> kModulus = {
      0x0e8bb78040061735ULL, 0xe7c996cab34aa127ULL, 0x89dc4f898f1c28a2ULL,
      0x1356500334683ba9ULL, 0xc47daa5312d447f6ULL, 0x80195e349c9171bfULL,
      0xb41713d1788fe955ULL, 0x722f5bff3c774235ULL, 0xcc000b7804a8d606ULL,
      0xa2419273f5790fddULL, 0xb2ef424d87b81fafULL, 0xa46cdf7333d77d32ULL,
      0x993d7f00022b17f5ULL, 0x5a0691df4302f944ULL, 0xd65dd3329452f84cULL,
      0xd4cde72807ae4a69ULL};
  static constexpr const char* kName = "ElGamalP220";
};

// Maps a verified-computation field to its ElGamal group parameters.
template <typename F>
struct ElGamalGroupTraits;

template <>
struct ElGamalGroupTraits<F128> {
  using PConfig = ElGamalP128Config;
  static constexpr std::array<uint64_t, 16> kGenerator = {
      0x713fbc8649f2093aULL, 0xd57c5c16411788a7ULL, 0x4eb88e6e3111db0cULL,
      0x88d0c6fa52c16b0bULL, 0x586ccbd0eb6da339ULL, 0x98c720efa2da0b09ULL,
      0x320fc0c523963601ULL, 0xbb0fcaec2fd335b0ULL, 0xdc117b8def21de5bULL,
      0x2c5c234f109fed52ULL, 0x89e1441813ef39a0ULL, 0x182b7a6a1c1c48b0ULL,
      0x5057af5e708586cbULL, 0xebde0e397951a876ULL, 0x8db599c61bc4702aULL,
      0x0496ca68735ad7a2ULL};
};

template <>
struct ElGamalGroupTraits<F220> {
  using PConfig = ElGamalP220Config;
  static constexpr std::array<uint64_t, 16> kGenerator = {
      0xad979779592f1662ULL, 0x158c40e5bb0b7773ULL, 0x75f0c0dc63706b6fULL,
      0x114ff266f4aaa0aeULL, 0xb03e383be2da4afdULL, 0xb2598215e545cd00ULL,
      0xb749c675f959142bULL, 0x257309629ffd06e4ULL, 0xaec2fef1f1958920ULL,
      0xc72b02d46726ff64ULL, 0x9a85306ce02d5eeeULL, 0xc715ff27d2f37174ULL,
      0x8ad3ce9fa70c5774ULL, 0xa4548c04aeb9d193ULL, 0x795b8f8a037ee6beULL,
      0xceab0cc43d997e08ULL};
};

// ElGamal<F>: encryption of elements of field F in the exponent of the
// associated 1024-bit group.
template <typename F>
class ElGamal {
 public:
  using Traits = ElGamalGroupTraits<F>;
  using Zp = PrimeField<typename Traits::PConfig>;  // group arithmetic mod p
  using Exponent = typename F::Repr;                // exponents live mod q

  struct PublicKey {
    Zp g;  // generator of the order-q subgroup
    Zp h;  // g^x
    // Windowed fixed-base tables for g and h, built once per key by
    // GenerateKeys (or on demand via PrecomputeTables). shared_ptr keeps the
    // key cheaply copyable; a table-less key (default-constructed, e.g. in
    // unit fixtures) falls back to plain square-and-multiply everywhere.
    std::shared_ptr<const FixedBaseTable<Zp>> g_table;
    std::shared_ptr<const FixedBaseTable<Zp>> h_table;

    void PrecomputeTables() {
      g_table = (g == Generator())
                    ? GeneratorTable()
                    : std::make_shared<const FixedBaseTable<Zp>>(
                          g, F::kModulusBits);
      h_table =
          std::make_shared<const FixedBaseTable<Zp>>(h, F::kModulusBits);
    }

    // g^e / h^e through the tables when present, a plain (vectorized when
    // possible) Pow otherwise. Both paths are bit-identical
    // (tests/multiexp_test.cc).
    Zp PowG(const Exponent& e) const {
      return g_table ? g_table->Pow(e) : ifma52::PowAuto(g, e);
    }
    Zp PowH(const Exponent& e) const {
      return h_table ? h_table->Pow(e) : ifma52::PowAuto(h, e);
    }
  };

  struct SecretKey {
    Exponent x;  // in [1, q)
  };

  struct KeyPair {
    PublicKey pk;
    SecretKey sk;
  };

  struct Ciphertext {
    Zp c1;  // g^r
    Zp c2;  // h^r * g^m

    // Homomorphic addition of plaintexts.
    Ciphertext operator*(const Ciphertext& o) const {
      return {c1 * o.c1, c2 * o.c2};
    }
    // Homomorphic multiplication of the plaintext by field scalar s. Weights
    // 0 and 1 are common in degenerate query vectors (src/apps/degenerate.h)
    // and must not pay two full 1024-bit square-and-multiply walks: s == 1 is
    // the identity and s == 0 encrypts zero (deterministically, matching
    // what the generic walk returns for those exponents bit-for-bit).
    Ciphertext Pow(const F& s) const {
      if (s.IsZero()) {
        return {Zp::One(), Zp::One()};
      }
      if (s.IsOne()) {
        return *this;
      }
      typename F::Repr e = s.ToCanonical();
      return {ifma52::PowAuto(c1, e), ifma52::PowAuto(c2, e)};
    }
  };

  static Zp Generator() {
    return Zp::FromCanonical(
        typename Zp::Repr(Traits::kGenerator));
  }

  // Fixed-base table for the (compile-time) generator, shared process-wide:
  // every key of a field uses the same g, so its table is built exactly once.
  static std::shared_ptr<const FixedBaseTable<Zp>> GeneratorTable() {
    static const std::shared_ptr<const FixedBaseTable<Zp>> table =
        std::make_shared<const FixedBaseTable<Zp>>(Generator(),
                                                   F::kModulusBits);
    return table;
  }

  static KeyPair GenerateKeys(Prg& prg) {
    F x = prg.NextNonzeroField<F>();
    KeyPair kp;
    kp.sk.x = x.ToCanonical();
    kp.pk.g = Generator();
    kp.pk.g_table = GeneratorTable();
    kp.pk.h = kp.pk.g_table->Pow(kp.sk.x);
    kp.pk.h_table = std::make_shared<const FixedBaseTable<Zp>>(
        kp.pk.h, F::kModulusBits);
    return kp;
  }

  // SECURITY: the nonce must be nonzero. r = 0 gives c1 = g^0 = 1 and
  // c2 = g^m — the "ciphertext" is the plaintext embedding in the clear, and
  // the degenerate c1 flags it to any observer. NextField can return zero
  // (probability 1/q — negligible for these fields, but structurally wrong),
  // so the nonce is drawn with NextNonzeroField. Templated on the RNG so the
  // r = 0 regression test can inject a stub generator.
  template <typename Rng = Prg>
  static Ciphertext Encrypt(const PublicKey& pk, const F& m, Rng& prg) {
    F r = prg.template NextNonzeroField<F>();
    return EncryptWithNonce(pk, m, r);
  }

  // Deterministic core of Encrypt: (g^r, h^r * g^m) for a caller-chosen
  // nonce. Exposed for tests (fixed-nonce vectors, the r = 0 leak shape).
  static Ciphertext EncryptWithNonce(const PublicKey& pk, const F& m,
                                     const F& r) {
    Exponent re = r.ToCanonical();
    return {pk.PowG(re), pk.PowH(re) * pk.PowG(m.ToCanonical())};
  }

  // Encrypts a row of messages under one key, sharing per-ciphertext work
  // that the one-at-a-time loop repeats: nonce digits are extracted once and
  // drive both components, and c2 = h^r * g^m runs as a single interleaved
  // dual-base walk (Straus/Shamir) instead of two walks and a multiply.
  //
  // All nonces are drawn from `prg` up front, in row order, before any group
  // arithmetic. This keeps the PRG stream identical to n sequential
  // Encrypt calls ONLY in the draw order sense — the guarantee tests rely on
  // is stronger and simpler: for equal seeds, EncryptRow(msgs, n) is
  // bit-identical to {Encrypt(msgs[0]), ..., Encrypt(msgs[n-1])} because the
  // i-th nonce here is the i-th nonce there and the walks agree bit-for-bit
  // with PowG/PowH. `workers` > 1 chunks rows across ParallelFor; drawing
  // nonces first is what makes the parallel schedule deterministic.
  static std::vector<Ciphertext> EncryptRow(const PublicKey& pk, const F* msgs,
                                            size_t n, Prg& prg,
                                            size_t workers = 1) {
    std::vector<F> nonces(n);
    for (size_t i = 0; i < n; i++) {
      nonces[i] = prg.template NextNonzeroField<F>();
    }
    std::vector<Ciphertext> out(n);
    if (!pk.g_table || !pk.h_table) {
      // Table-less keys (unit fixtures): no shared structure to exploit.
      for (size_t i = 0; i < n; i++) {
        out[i] = EncryptWithNonce(pk, msgs[i], nonces[i]);
      }
      return out;
    }
    const FixedBaseTable<Zp>& gt = *pk.g_table;
    const FixedBaseTable<Zp>& ht = *pk.h_table;
    size_t chunks = std::min(workers == 0 ? size_t{1} : workers, n);
    ParallelFor(chunks, chunks, [&](size_t chunk) {
      size_t lo = n * chunk / chunks;
      size_t hi = n * (chunk + 1) / chunks;
      uint64_t dr[FixedBaseTable<Zp>::kMaxWindows];
      uint64_t dm[FixedBaseTable<Zp>::kMaxWindows];
      for (size_t i = lo; i < hi; i++) {
        Exponent re = nonces[i].ToCanonical();
        gt.ExtractDigits(re, dr);  // g and h tables share exp_bits, so the
                                   // r-digits feed both walks
        out[i].c1 = gt.PowDigits(dr);
        gt.ExtractDigits(msgs[i].ToCanonical(), dm);
        out[i].c2 = FixedBaseTable<Zp>::PowDigitsProduct(ht, dr, gt, dm);
      }
    });
    return out;
  }

  // Returns g^m; full decryption to m would require a discrete log, which the
  // commitment protocol never needs.
  static Zp DecryptToGroup(const SecretKey& sk, const PublicKey& /*pk*/,
                           const Ciphertext& ct) {
    // c2 / c1^x. An honest c1 = g^r lies in the order-q subgroup, so
    // (c1^x)^{-1} = c1^{q-x}: one |q|-bit exponentiation instead of an
    // x-walk followed by a full 1024-bit Fermat inversion (the Fermat
    // exponent itself is now the hoisted Zp::kFermatExponent, used by
    // Zp::Inverse for general elements). A hostile c1 outside the subgroup
    // decrypts to garbage under either formula and fails the consistency
    // check; the protocol never extracts structure from such a value.
    Exponent neg_x = F::kModulus;
    neg_x.SubInPlace(sk.x);
    return ct.c2 * ifma52::PowAuto(ct.c1, neg_x);
  }

  // g^m for a field element m (used by the verifier's consistency check);
  // fixed-base, so it runs through the key's table.
  static Zp GroupEmbed(const PublicKey& pk, const F& m) {
    return pk.PowG(m.ToCanonical());
  }

  // Homomorphically evaluates Enc(<u, r>) from Enc(r) and plaintext weights u:
  // prod_i cts[i]^{u[i]}. This is the prover's commitment step; its cost is
  // the "h" parameter of the Figure 3 cost model, per element. Both
  // ciphertext components run through the Pippenger bucket kernel;
  // `workers` > 1 additionally chunks each kernel across threads.
  static Ciphertext InnerProduct(const Ciphertext* cts, const F* u, size_t n,
                                 size_t workers = 1) {
    std::vector<Zp> bases(n);
    for (size_t i = 0; i < n; i++) {
      bases[i] = cts[i].c1;
    }
    Ciphertext acc;
    acc.c1 = MultiExp(bases.data(), u, n, workers);
    for (size_t i = 0; i < n; i++) {
      bases[i] = cts[i].c2;
    }
    acc.c2 = MultiExp(bases.data(), u, n, workers);
    return acc;
  }

  // The pre-multiexp commitment loop: one independent Pow-and-multiply per
  // nonzero weight. This is the differential-testing AND benchmarking
  // yardstick for InnerProduct, so it is pinned to the frozen bit-at-a-time
  // PowNaive / generic-Montgomery path — NOT Ciphertext::Pow, which now
  // routes through the windowed and vectorized kernels. Pinning keeps the
  // bench_multiexp speedup series comparable across revisions; do not
  // "optimize" this function.
  static Ciphertext InnerProductNaive(const Ciphertext* cts, const F* u,
                                      size_t n) {
    Ciphertext acc{Zp::One(), Zp::One()};
    for (size_t i = 0; i < n; i++) {
      if (u[i].IsZero()) {
        continue;
      }
      typename F::Repr e = u[i].ToCanonical();
      acc.c1 = acc.c1 * cts[i].c1.PowNaive(e);
      acc.c2 = acc.c2 * cts[i].c2.PowNaive(e);
    }
    return acc;
  }
};

}  // namespace zaatar

#endif  // SRC_CRYPTO_ELGAMAL_H_
