// ChaCha20 stream cipher (RFC 8439 block function), used as the protocol's
// pseudorandom generator — the paper (§5.1) uses ChaCha for this role.

#ifndef SRC_CRYPTO_CHACHA_H_
#define SRC_CRYPTO_CHACHA_H_

#include <array>
#include <cstddef>
#include <cstdint>

namespace zaatar {

class ChaCha20 {
 public:
  static constexpr size_t kKeyBytes = 32;
  static constexpr size_t kNonceBytes = 12;
  static constexpr size_t kBlockBytes = 64;

  ChaCha20(const std::array<uint8_t, kKeyBytes>& key,
           const std::array<uint8_t, kNonceBytes>& nonce,
           uint32_t initial_counter = 0);

  // Writes the keystream block for the current counter and advances it.
  void NextBlock(uint8_t out[kBlockBytes]);

  // Computes one block without mutating state (RFC 8439 §2.3 test support).
  static void Block(const std::array<uint8_t, kKeyBytes>& key,
                    const std::array<uint8_t, kNonceBytes>& nonce,
                    uint32_t counter, uint8_t out[kBlockBytes]);

 private:
  std::array<uint32_t, 16> state_{};
};

}  // namespace zaatar

#endif  // SRC_CRYPTO_CHACHA_H_
