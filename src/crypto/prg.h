// Seeded pseudorandom generator producing words, bounded integers, and
// uniform field elements (rejection sampling), backed by ChaCha20.
//
// Both the verifier's PCP query randomness and the commitment randomness are
// drawn from Prg instances. Queries can therefore be shipped as a seed
// (the network-cost optimization of [53, Apdx A.3]).

#ifndef SRC_CRYPTO_PRG_H_
#define SRC_CRYPTO_PRG_H_

#include <array>
#include <cstdint>
#include <cstring>
#include <vector>

#include "src/crypto/chacha.h"
#include "src/field/bigint.h"

namespace zaatar {

class Prg {
 public:
  // Expands a 64-bit convenience seed into a full 256-bit ChaCha key using
  // four rounds of splitmix64. Copying the raw seed into the low 8 bytes
  // (the previous behavior) left 24 of the 32 key bytes zero, so the entire
  // keyspace reachable from this constructor was 2^64 keys that all shared a
  // 192-bit all-zero suffix — trivially distinguishable, and adjacent seeds
  // produced nearly identical key schedules. splitmix64's finalizer
  // decorrelates the four words from each other and from the seed.
  static std::array<uint8_t, ChaCha20::kKeyBytes> ExpandSeed(uint64_t seed) {
    std::array<uint8_t, ChaCha20::kKeyBytes> key{};
    uint64_t state = seed;
    for (size_t i = 0; i < ChaCha20::kKeyBytes / 8; i++) {
      state += 0x9e3779b97f4a7c15ULL;
      uint64_t z = state;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      z ^= z >> 31;
      std::memcpy(key.data() + i * 8, &z, 8);
    }
    return key;
  }

  explicit Prg(uint64_t seed) : Prg(ExpandSeed(seed)) {}

  explicit Prg(const std::array<uint8_t, ChaCha20::kKeyBytes>& key)
      : cipher_(key, /*nonce=*/{}, /*initial_counter=*/0) {}

  uint64_t NextU64() {
    if (pos_ + 8 > ChaCha20::kBlockBytes) {
      Refill();
    }
    uint64_t v;
    std::memcpy(&v, &buf_[pos_], 8);
    pos_ += 8;
    return v;
  }

  // Uniform in [0, bound); bound > 0. Rejection sampling, no modulo bias.
  uint64_t NextBounded(uint64_t bound) {
    if (bound <= 1) {
      return 0;
    }
    uint64_t mask = ~uint64_t{0} >> __builtin_clzll((bound - 1) | 1);
    for (;;) {
      uint64_t v = NextU64() & mask;
      if (v < bound) {
        return v;
      }
    }
  }

  bool NextBool() { return (NextU64() & 1) != 0; }

  // Uniform field element (rejection sampling against the modulus).
  template <typename F>
  F NextField() {
    using Repr = typename F::Repr;
    constexpr size_t kTopBits = F::kModulusBits % 64;
    constexpr uint64_t kTopMask =
        kTopBits == 0 ? ~uint64_t{0} : ((uint64_t{1} << kTopBits) - 1);
    constexpr size_t kWords = (F::kModulusBits + 63) / 64;
    for (;;) {
      Repr r;
      for (size_t i = 0; i < kWords; i++) {
        r.limbs[i] = NextU64();
      }
      r.limbs[kWords - 1] &= kTopMask;
      if (r < F::kModulus) {
        return F::FromCanonical(r);
      }
    }
  }

  // Uniform nonzero field element.
  template <typename F>
  F NextNonzeroField() {
    for (;;) {
      F v = NextField<F>();
      if (!v.IsZero()) {
        return v;
      }
    }
  }

  template <typename F>
  std::vector<F> NextFieldVector(size_t n) {
    std::vector<F> v(n);
    for (size_t i = 0; i < n; i++) {
      v[i] = NextField<F>();
    }
    return v;
  }

 private:
  void Refill() {
    cipher_.NextBlock(buf_.data());
    pos_ = 0;
  }

  ChaCha20 cipher_{std::array<uint8_t, ChaCha20::kKeyBytes>{},
                   std::array<uint8_t, ChaCha20::kNonceBytes>{}, 0};
  std::array<uint8_t, ChaCha20::kBlockBytes> buf_{};
  size_t pos_ = ChaCha20::kBlockBytes;  // force refill on first use
};

}  // namespace zaatar

#endif  // SRC_CRYPTO_PRG_H_
