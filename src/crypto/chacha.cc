#include "src/crypto/chacha.h"

namespace zaatar {

namespace {

inline uint32_t Rotl(uint32_t x, int n) { return (x << n) | (x >> (32 - n)); }

inline void QuarterRound(uint32_t& a, uint32_t& b, uint32_t& c, uint32_t& d) {
  a += b;
  d = Rotl(d ^ a, 16);
  c += d;
  b = Rotl(b ^ c, 12);
  a += b;
  d = Rotl(d ^ a, 8);
  c += d;
  b = Rotl(b ^ c, 7);
}

inline uint32_t Load32Le(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

inline void Store32Le(uint8_t* p, uint32_t v) {
  p[0] = static_cast<uint8_t>(v);
  p[1] = static_cast<uint8_t>(v >> 8);
  p[2] = static_cast<uint8_t>(v >> 16);
  p[3] = static_cast<uint8_t>(v >> 24);
}

}  // namespace

ChaCha20::ChaCha20(const std::array<uint8_t, kKeyBytes>& key,
                   const std::array<uint8_t, kNonceBytes>& nonce,
                   uint32_t initial_counter) {
  state_[0] = 0x61707865;
  state_[1] = 0x3320646e;
  state_[2] = 0x79622d32;
  state_[3] = 0x6b206574;
  for (int i = 0; i < 8; i++) {
    state_[4 + i] = Load32Le(&key[4 * i]);
  }
  state_[12] = initial_counter;
  for (int i = 0; i < 3; i++) {
    state_[13 + i] = Load32Le(&nonce[4 * i]);
  }
}

void ChaCha20::NextBlock(uint8_t out[kBlockBytes]) {
  std::array<uint32_t, 16> x = state_;
  for (int round = 0; round < 10; round++) {
    QuarterRound(x[0], x[4], x[8], x[12]);
    QuarterRound(x[1], x[5], x[9], x[13]);
    QuarterRound(x[2], x[6], x[10], x[14]);
    QuarterRound(x[3], x[7], x[11], x[15]);
    QuarterRound(x[0], x[5], x[10], x[15]);
    QuarterRound(x[1], x[6], x[11], x[12]);
    QuarterRound(x[2], x[7], x[8], x[13]);
    QuarterRound(x[3], x[4], x[9], x[14]);
  }
  for (int i = 0; i < 16; i++) {
    Store32Le(&out[4 * i], x[i] + state_[i]);
  }
  state_[12]++;  // block counter
}

void ChaCha20::Block(const std::array<uint8_t, kKeyBytes>& key,
                     const std::array<uint8_t, kNonceBytes>& nonce,
                     uint32_t counter, uint8_t out[kBlockBytes]) {
  ChaCha20 c(key, nonce, counter);
  c.NextBlock(out);
}

}  // namespace zaatar
