// Multi-exponentiation engines for the 1024-bit commitment group.
//
// The prover's commitment step evaluates prod_i b_i^{e_i} over thousands of
// terms, and the verifier's setup exponentiates the *fixed* bases g and h
// once per proof element. Naive square-and-multiply costs ~1.5 * |e| group
// multiplications per term; the two standard techniques here cut that by an
// order of magnitude (the same tricks the linear-PCP literature assumes for
// its cost models):
//
//   - FixedBaseTable: windowed fixed-base exponentiation. For a base that is
//     reused across many exponentiations (g, h of a public key), precompute
//     T[j][d] = base^(d << j*w); then base^e is one table lookup and multiply
//     per w-bit digit of e — no squarings, ~|e|/w multiplications.
//
//   - MultiExp: Pippenger's bucket method with signed digits. Exponents are
//     recoded into c-bit digits in [-2^(c-1), 2^(c-1)); negative digits index
//     the same buckets through batch-inverted bases, halving the bucket count
//     (and the fold cost) relative to unsigned windows. Total cost
//     ~ ceil(|e|/c) * (n + 2^(c-1)) multiplications + |e| squarings + one
//     batch inversion (3n muls + one Fermat), versus ~1.5 * |e| * n naive.
//
// Both layers run their long multiplication chains through the radix-2^52
// AVX-512 IFMA kernel when the CPU supports it (src/field/ifma52.h), packing
// operands into the vector domain once per call and unpacking once at the
// end. All paths are exact group arithmetic: results are bit-identical to
// the naive reference (multiplication mod p is associative/commutative and
// canonical Montgomery form is unique), which the differential tests in
// tests/multiexp_test.cc rely on.

#ifndef SRC_CRYPTO_MULTIEXP_H_
#define SRC_CRYPTO_MULTIEXP_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/field/bigint.h"
#include "src/field/ifma52.h"
#include "src/obs/metrics.h"
#include "src/util/parallel_for.h"

namespace zaatar {

namespace multiexp_internal {

// Extracts `width` bits of e starting at bit `pos` (width <= 57 so the
// result always fits one limb even when the window straddles a boundary).
template <size_t M>
inline uint64_t ExtractBits(const BigInt<M>& e, size_t pos, size_t width) {
  size_t limb = pos / 64;
  size_t shift = pos % 64;
  if (limb >= M) {
    return 0;
  }
  uint64_t bits = e.limbs[limb] >> shift;
  if (shift + width > 64 && limb + 1 < M) {
    bits |= e.limbs[limb + 1] << (64 - shift);
  }
  return bits & ((uint64_t{1} << width) - 1);
}

// Signed-digit recode: e = sum_j out[j] * 2^(c*j) with out[j] in
// [-2^(c-1), 2^(c-1)). `windows` must be ceil(bits/c) + 1; the final slot
// absorbs the top carry (0 or 1).
template <size_t M>
inline void SignedDigits(const BigInt<M>& e, size_t c, size_t windows,
                         int32_t* out) {
  const uint64_t full = uint64_t{1} << c;
  const uint64_t half = uint64_t{1} << (c - 1);
  uint64_t carry = 0;
  for (size_t j = 0; j + 1 < windows; j++) {
    uint64_t raw = ExtractBits(e, j * c, c) + carry;
    if (raw >= half) {  // raw can reach 2^c when the carry lands on all-ones
      out[j] = static_cast<int32_t>(static_cast<int64_t>(raw) -
                                    static_cast<int64_t>(full));
      carry = 1;
    } else {
      out[j] = static_cast<int32_t>(raw);
      carry = 0;
    }
  }
  out[windows - 1] = static_cast<int32_t>(carry);
}

// Element-operation bundles the bucket kernel is templated over: the scalar
// form multiplies group elements directly, the packed form runs the IFMA
// radix-52 kernel with one import/export per element at the boundary.
// MulInto2 is the pairing hook: two *independent* multiplies issued together
// so the packed form can interleave them through one latency-bound loop
// (ifma52::Engine::Mul2 runs a pair in ~1.3x the time of one).
template <typename G>
struct ScalarOps {
  using E = G;
  static E Import(const G& g) { return g; }
  static G Export(const E& e) { return e; }
  static void MulInto(E* a, const E& b) { *a = *a * b; }
  static void MulInto2(E* a, const E& b, E* x, const E& y) {
    *a = *a * b;
    *x = *x * y;
  }

  // Inverses of the imported bases, Montgomery-trick batched. The scalar
  // form is just the library BatchInvert (zeros stay zero, matching it).
  static void ImportInverses(const G* bases, const std::vector<E>& /*pb*/,
                             size_t n, std::vector<E>* out) {
    std::vector<G> inv(bases, bases + n);
    BatchInvert(inv.data(), n);
    out->assign(inv.begin(), inv.end());
  }
};

template <typename G>
struct PackedOps {
  using E = ifma52::Packed;
  static E Import(const G& g) { return ifma52::Engine<G>::Pack(g); }
  static G Export(const E& e) { return ifma52::Engine<G>::Unpack(e); }
  static void MulInto(E* a, const E& b) { ifma52::Engine<G>::Mul(*a, b, a); }
  static void MulInto2(E* a, const E& b, E* x, const E& y) {
    ifma52::Engine<G>::Mul2(*a, b, a, *x, y, x);
  }

  // The Montgomery trick without leaving the packed domain: prefix products
  // of the already-imported bases, one Fermat walk for the running total,
  // then a paired backward sweep (out[i] = t * prefix[i-1] and t *= pb[i]
  // are independent given t, so each step is one Mul2). Only the single
  // inversion crosses the scalar boundary. Zero bases (never produced by
  // honest ciphertexts, but BatchInvert tolerates them) are skipped the same
  // way: their slot keeps a zero and the chain walks past them.
  static void ImportInverses(const G* bases, const std::vector<E>& pb,
                             size_t n, std::vector<E>* out) {
    using Eng = ifma52::Engine<G>;
    out->assign(n, E{});
    std::vector<E> prefix(n);  // prefix[i] = prod_{k < i, nonzero} pb[k]
    E acc = Import(G::One());
    for (size_t i = 0; i < n; i++) {
      prefix[i] = acc;
      if (!bases[i].IsZero()) {
        Eng::Mul(acc, pb[i], &acc);
      }
    }
    E t = Import(ifma52::PowPacked(Export(acc), G::kFermatExponent));
    for (size_t i = n; i-- > 0;) {
      if (bases[i].IsZero()) {
        continue;
      }
      // (*out)[i] = t * prefix[i] = pb[i]^-1;  t *= pb[i] drops base i from
      // the running inverse. Both read the same t: one interleaved pair.
      Eng::Mul2(t, prefix[i], &(*out)[i], t, pb[i], &t);
    }
  }
};

// The signed-digit bucket kernel. Buckets carry "filled" flags so the first
// contribution is a copy, not a multiply by One — that alone saves one mul
// per touched bucket per window, and lets the packed path avoid materializing
// an identity element entirely.
template <typename Ops, typename G, size_t M>
G MultiExpSignedImpl(const G* bases, const BigInt<M>* exps, size_t n,
                     size_t bits, size_t c) {
  using E = typename Ops::E;
  const size_t half = size_t{1} << (c - 1);
  const size_t windows = (bits + c - 1) / c + 1;  // +1: top recode carry

  std::vector<int32_t> digits(n * windows, 0);
  bool any_negative = false;
  for (size_t i = 0; i < n; i++) {
    if (exps[i].IsZero()) {
      continue;  // all-zero digit row: the term is skipped below
    }
    int32_t* row = &digits[i * windows];
    SignedDigits(exps[i], c, windows, row);
    if (!any_negative) {
      for (size_t j = 0; j < windows; j++) {
        if (row[j] < 0) {
          any_negative = true;
          break;
        }
      }
    }
  }

  std::vector<E> pb(n);
  for (size_t i = 0; i < n; i++) {
    pb[i] = Ops::Import(bases[i]);
  }
  // Negative digits read batch-inverted bases: one Montgomery-trick pass
  // (3n muls + a single Fermat inversion) for the whole call, run in the
  // Ops domain so the packed path never round-trips through scalar limbs.
  std::vector<E> pbinv;
  if (any_negative) {
    Ops::ImportInverses(bases, pb, n, &pbinv);
  }

  std::vector<E> buckets(half);
  std::vector<uint8_t> filled(half, 0);
  E acc{};
  bool acc_started = false;
  for (size_t j = windows; j-- > 0;) {
    if (acc_started) {
      for (size_t s = 0; s < c; s++) {
        Ops::MulInto(&acc, acc);
      }
    }
    // Bucket accumulation, issued in pairs: consecutive multiplies almost
    // always hit different buckets, so holding one back and issuing two
    // independent ones together feeds the interleaved kernel. Same-bucket
    // collisions flush the older op first (order within a bucket preserved;
    // across buckets the products commute, so any schedule yields the same
    // group element).
    bool touched = false;
    size_t pend_idx = SIZE_MAX;
    const E* pend_src = nullptr;
    for (size_t i = 0; i < n; i++) {
      int32_t d = digits[i * windows + j];
      if (d == 0) {
        continue;
      }
      size_t idx;
      const E* src;
      if (d > 0) {
        idx = static_cast<size_t>(d) - 1;
        src = &pb[i];
      } else {
        idx = static_cast<size_t>(-d) - 1;
        src = &pbinv[i];
      }
      touched = true;
      if (!filled[idx]) {
        buckets[idx] = *src;
        filled[idx] = 1;
        continue;
      }
      if (pend_idx == SIZE_MAX) {
        pend_idx = idx;
        pend_src = src;
      } else if (pend_idx == idx) {
        Ops::MulInto(&buckets[pend_idx], *pend_src);
        pend_src = src;
      } else {
        Ops::MulInto2(&buckets[pend_idx], *pend_src, &buckets[idx], *src);
        pend_idx = SIZE_MAX;
      }
    }
    if (pend_idx != SIZE_MAX) {
      Ops::MulInto(&buckets[pend_idx], *pend_src);
    }
    if (!touched) {
      continue;
    }
    // Fold buckets: sum_d (d+1) * B_d as a running suffix product. `running`
    // walks prod_{d' >= d} B_{d'}; multiplying it into `wsum` once per level
    // weights each bucket by its digit value. The two chains are software-
    // pipelined one level apart: the wsum update owed at level d uses the
    // running value of level d, which is exactly what is in hand when level
    // d-1's running update is found — so the pair goes out as one Mul2.
    E running{};
    E wsum{};
    bool run_started = false;
    bool wsum_started = false;
    bool owe_wsum = false;  // wsum *= running pending for the level above
    auto issue_owed = [&]() {
      if (wsum_started) {
        Ops::MulInto(&wsum, running);
      } else {
        wsum = running;
        wsum_started = true;
      }
    };
    for (size_t d = half; d-- > 0;) {
      if (filled[d]) {
        filled[d] = 0;  // reset for the next window
        if (!run_started) {
          running = buckets[d];
          run_started = true;
        } else if (owe_wsum && wsum_started) {
          // One paired issue: the owed wsum multiply reads the pre-update
          // running; the running update is independent of it.
          Ops::MulInto2(&wsum, running, &running, buckets[d]);
          owe_wsum = false;
        } else {
          if (owe_wsum) {
            issue_owed();  // first wsum op is a copy — nothing to pair
            owe_wsum = false;
          }
          Ops::MulInto(&running, buckets[d]);
        }
      } else if (!run_started) {
        continue;  // above the first filled bucket: no weight owed yet
      }
      if (owe_wsum) {
        issue_owed();  // running unchanged at this level: settle sequentially
      }
      owe_wsum = true;
    }
    if (owe_wsum) {
      issue_owed();
    }
    if (acc_started) {
      Ops::MulInto(&acc, wsum);
    } else {
      acc = wsum;
      acc_started = true;
    }
  }
  return acc_started ? Ops::Export(acc) : G::One();
}

}  // namespace multiexp_internal

// Picks the Pippenger window width minimizing the modeled multiplication
// count under signed-digit recoding: ceil(bits/c) * (n + 2^(c-1)) bucket and
// fold multiplies. The batch inversion the signed form needs costs ~3n plus
// one Fermat walk *independent of c*, so it shifts every candidate equally
// and stays out of the scan.
inline size_t PippengerWindowBits(size_t n, size_t bits) {
  if (n == 0 || bits == 0) {
    return 1;
  }
  // c is capped at 16 (2^15 buckets for a 1024-bit group) — beyond that the
  // bucket array stops fitting in cache and the model stops holding.
  size_t best_c = 1;
  uint64_t best_cost = ~uint64_t{0};
  for (size_t c = 1; c <= 16; c++) {
    uint64_t windows = (bits + c - 1) / c;
    uint64_t cost = windows * (n + (uint64_t{1} << (c - 1)));
    if (cost < best_cost) {
      best_cost = cost;
      best_c = c;
    }
  }
  return best_c;
}

// Windowed fixed-base exponentiation table over group G (a PrimeField type
// used multiplicatively). Precomputes base^(d << j*w) for every window j and
// digit d, so Pow(e) is ceil(bits/w) multiplications and zero squarings.
// When the IFMA kernel is available the entries are mirrored in packed form
// at build time, so walks run vectorized end to end with a single unpack.
//
// Sized by `exp_bits`, the largest exponent bit-length the table covers
// (the ElGamal subgroup order |q| for key material). Larger exponents fall
// back to plain square-and-multiply rather than reading out of range.
template <typename G>
class FixedBaseTable {
 public:
  static constexpr size_t kWindowBits = 6;
  static constexpr size_t kDigits = (size_t{1} << kWindowBits) - 1;  // 1..63
  // Window-count bound for stack-allocated digit arrays: covers exponents up
  // to 384 bits, far above both subgroup orders (128/220 bits).
  static constexpr size_t kMaxWindows = 64;

  FixedBaseTable() = default;

  FixedBaseTable(const G& base, size_t exp_bits)
      : base_(base), exp_bits_(exp_bits) {
    size_t windows = (exp_bits + kWindowBits - 1) / kWindowBits;
    table_.resize(windows * kDigits);
    G window_base = base;  // base^(2^(j*w)) for the current window j
    for (size_t j = 0; j < windows; j++) {
      G* row = &table_[j * kDigits];
      row[0] = window_base;
      for (size_t d = 1; d < kDigits; d++) {
        row[d] = row[d - 1] * window_base;
      }
      if (j + 1 < windows) {
        window_base = row[kDigits - 1] * window_base;  // base^(2^((j+1)*w))
      }
    }
    if constexpr (G::kLimbs == 16) {
      if (ifma52::Available()) {
        packed_.resize(table_.size());
        for (size_t i = 0; i < table_.size(); i++) {
          packed_[i] = ifma52::Engine<G>::Pack(table_[i]);
        }
      }
    }
  }

  const G& base() const { return base_; }
  size_t exp_bits() const { return exp_bits_; }
  size_t windows() const { return table_.size() / kDigits; }

  // Splits e into this table's w-bit digits. `digits` must hold windows()
  // entries (<= kMaxWindows) and e must fit exp_bits().
  template <size_t M>
  void ExtractDigits(const BigInt<M>& e, uint64_t* digits) const {
    size_t w = windows();
    for (size_t j = 0; j < w; j++) {
      digits[j] =
          multiexp_internal::ExtractBits(e, j * kWindowBits, kWindowBits);
    }
  }

  // base^e from pre-extracted digits — the walk EncryptRow shares digit
  // extraction across. Bit-identical to base.Pow(e).
  G PowDigits(const uint64_t* digits) const {
    size_t w = windows();
    if constexpr (G::kLimbs == 16) {
      if (!packed_.empty()) {
        ifma52::Packed acc{};
        bool started = false;
        for (size_t j = 0; j < w; j++) {
          if (digits[j] == 0) {
            continue;
          }
          const ifma52::Packed& t = packed_[j * kDigits + (digits[j] - 1)];
          if (started) {
            ifma52::Engine<G>::Mul(acc, t, &acc);
          } else {
            acc = t;
            started = true;
          }
        }
        return started ? ifma52::Engine<G>::Unpack(acc) : G::One();
      }
    }
    G r = G::One();
    for (size_t j = 0; j < w; j++) {
      if (digits[j] != 0) {
        r = r * table_[j * kDigits + (digits[j] - 1)];
      }
    }
    return r;
  }

  // ta^{da} * tb^{db} in one interleaved dual-base walk (Straus/Shamir): a
  // single accumulator takes both tables' hits per window, saving one
  // boundary unpack and the final cross multiply relative to two walks.
  static G PowDigitsProduct(const FixedBaseTable& ta, const uint64_t* da,
                            const FixedBaseTable& tb, const uint64_t* db) {
    const size_t wa = ta.windows();
    const size_t wb = tb.windows();
    const size_t w = wa > wb ? wa : wb;
    if constexpr (G::kLimbs == 16) {
      if (!ta.packed_.empty() && !tb.packed_.empty()) {
        ifma52::Packed acc{};
        bool started = false;
        auto take = [&](const ifma52::Packed& t) {
          if (started) {
            ifma52::Engine<G>::Mul(acc, t, &acc);
          } else {
            acc = t;
            started = true;
          }
        };
        for (size_t j = 0; j < w; j++) {
          if (j < wa && da[j] != 0) {
            take(ta.packed_[j * kDigits + (da[j] - 1)]);
          }
          if (j < wb && db[j] != 0) {
            take(tb.packed_[j * kDigits + (db[j] - 1)]);
          }
        }
        return started ? ifma52::Engine<G>::Unpack(acc) : G::One();
      }
    }
    return ta.PowDigits(da) * tb.PowDigits(db);
  }

  // base^e, bit-identical to base.Pow(e).
  template <size_t M>
  G Pow(const BigInt<M>& e) const {
    if (table_.empty() || e.BitLength() > exp_bits_) {
      return base_.Pow(e);  // exponent outside the precomputed range
    }
    uint64_t digits[kMaxWindows];
    ExtractDigits(e, digits);
    return PowDigits(digits);
  }

 private:
  G base_{};
  size_t exp_bits_ = 0;
  std::vector<G> table_;  // row j, entry d-1: base^(d << j*w)
  std::vector<ifma52::Packed> packed_;  // same layout, radix-52 domain
};

// Pippenger signed-digit bucket multi-exponentiation:
// prod_i bases[i]^{exps[i]} over group G with BigInt<M> exponents. Zero
// exponents are skipped (matching the naive path's skip, and the common
// all-zero degenerate query vectors). When non-null, `window_bits` receives
// the window width the kernel actually chose from (nonzero count, max
// exponent bit-length) — 0 if the degenerate early-outs fired.
template <typename G, size_t M>
G MultiExpBigInt(const G* bases, const BigInt<M>* exps, size_t n,
                 size_t* window_bits = nullptr) {
  if (window_bits != nullptr) {
    *window_bits = 0;
  }
  if (n == 0) {
    return G::One();
  }
  size_t bits = 0;
  size_t nonzero = 0;
  for (size_t i = 0; i < n; i++) {
    size_t b = exps[i].BitLength();
    if (b > 0) {
      nonzero++;
      if (b > bits) {
        bits = b;
      }
    }
  }
  if (nonzero == 0) {
    return G::One();
  }
  size_t c = PippengerWindowBits(nonzero, bits);
  if (window_bits != nullptr) {
    *window_bits = c;
  }
  if constexpr (G::kLimbs == 16) {
    // The packed kernel pays ~2 boundary AMMs per base; only worth it once
    // the bucket work dominates.
    if (ifma52::Available() && nonzero * bits >= 256) {
      return multiexp_internal::MultiExpSignedImpl<
          multiexp_internal::PackedOps<G>, G, M>(bases, exps, n, bits, c);
    }
  }
  return multiexp_internal::MultiExpSignedImpl<multiexp_internal::ScalarOps<G>,
                                               G, M>(bases, exps, n, bits, c);
}

// Field-scalar front end: canonicalizes the scalars once, then runs the
// bucket kernel. `workers` > 1 chunks the terms across ParallelFor threads
// and combines the partial products (exact group arithmetic, so the result
// is independent of the split).
template <typename G, typename F>
G MultiExp(const G* bases, const F* scalars, size_t n, size_t workers = 1) {
  using Exp = typename F::Repr;
  // Metrics are recorded at the front end only: ParallelFor workers have no
  // ambient metrics installed, so the kernel reports its chosen window width
  // through an out-param (per chunk on the parallel path) and the front end
  // observes after the join. multiexp.window_bits therefore reflects what
  // the kernel *actually* picked from (nonzero count, max bit-length), not a
  // front-end re-derivation.
  obs::MetricAdd("multiexp.calls");
  obs::MetricObserve("multiexp.terms", n);
  std::vector<Exp> exps(n);
  for (size_t i = 0; i < n; i++) {
    exps[i] = scalars[i].ToCanonical();
  }
  if (workers <= 1 || n < 2 * workers) {
    size_t chosen = 0;
    G r = MultiExpBigInt(bases, exps.data(), n, &chosen);
    if (chosen > 0) {
      obs::MetricObserve("multiexp.window_bits", chosen);
    }
    return r;
  }
  size_t chunk = (n + workers - 1) / workers;
  size_t chunks = (n + chunk - 1) / chunk;
  std::vector<G> partial(chunks, G::One());
  std::vector<size_t> chunk_window(chunks, 0);
  ParallelFor(chunks, workers, [&](size_t k) {
    size_t lo = k * chunk;
    size_t hi = lo + chunk < n ? lo + chunk : n;
    partial[k] =
        MultiExpBigInt(bases + lo, exps.data() + lo, hi - lo, &chunk_window[k]);
  });
  for (size_t k = 0; k < chunks; k++) {
    if (chunk_window[k] > 0) {
      obs::MetricObserve("multiexp.window_bits", chunk_window[k]);
    }
  }
  G acc = G::One();
  for (const G& p : partial) {
    acc = acc * p;
  }
  return acc;
}

}  // namespace zaatar

#endif  // SRC_CRYPTO_MULTIEXP_H_
