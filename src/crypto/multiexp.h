// Multi-exponentiation engines for the 1024-bit commitment group.
//
// The prover's commitment step evaluates prod_i b_i^{e_i} over thousands of
// terms, and the verifier's setup exponentiates the *fixed* bases g and h
// once per proof element. Naive square-and-multiply costs ~1.5 * |e| group
// multiplications per term; the two standard techniques here cut that by an
// order of magnitude (the same tricks the linear-PCP literature assumes for
// its cost models):
//
//   - FixedBaseTable: windowed fixed-base exponentiation. For a base that is
//     reused across many exponentiations (g, h of a public key), precompute
//     T[j][d] = base^(d << j*w); then base^e is one table lookup and multiply
//     per w-bit digit of e — no squarings, ~|e|/w multiplications.
//
//   - MultiExp: Pippenger's bucket method. Exponents are cut into c-bit
//     digits; per digit position, bases with equal digit value share one
//     bucket accumulation, and the buckets are folded with a running-product
//     scan. Total cost ~ ceil(|e|/c) * (n + 2^c) multiplications + |e|
//     squarings, versus ~1.5 * |e| * n naive.
//
// Both are exact group arithmetic: results are bit-identical to the naive
// path (multiplication mod p is associative/commutative), which the
// differential tests in tests/multiexp_test.cc rely on.

#ifndef SRC_CRYPTO_MULTIEXP_H_
#define SRC_CRYPTO_MULTIEXP_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/field/bigint.h"
#include "src/obs/metrics.h"
#include "src/util/parallel_for.h"

namespace zaatar {

namespace multiexp_internal {

// Extracts `width` bits of e starting at bit `pos` (width <= 57 so the
// result always fits one limb even when the window straddles a boundary).
template <size_t M>
inline uint64_t ExtractBits(const BigInt<M>& e, size_t pos, size_t width) {
  size_t limb = pos / 64;
  size_t shift = pos % 64;
  if (limb >= M) {
    return 0;
  }
  uint64_t bits = e.limbs[limb] >> shift;
  if (shift + width > 64 && limb + 1 < M) {
    bits |= e.limbs[limb + 1] << (64 - shift);
  }
  return bits & ((uint64_t{1} << width) - 1);
}

}  // namespace multiexp_internal

// Picks the Pippenger window width minimizing the modeled multiplication
// count ceil(bits/c) * (n + 2^c) for n terms of `bits`-bit exponents.
inline size_t PippengerWindowBits(size_t n, size_t bits) {
  if (n == 0 || bits == 0) {
    return 1;
  }
  // c is capped at 16 (8 MB of buckets for a 1024-bit group) — beyond that
  // the bucket array stops fitting in cache and the model stops holding.
  size_t best_c = 1;
  uint64_t best_cost = ~uint64_t{0};
  for (size_t c = 1; c <= 16; c++) {
    uint64_t windows = (bits + c - 1) / c;
    uint64_t cost = windows * (n + (uint64_t{1} << c));
    if (cost < best_cost) {
      best_cost = cost;
      best_c = c;
    }
  }
  return best_c;
}

// Windowed fixed-base exponentiation table over group G (a PrimeField type
// used multiplicatively). Precomputes base^(d << j*w) for every window j and
// digit d, so Pow(e) is ceil(bits/w) multiplications and zero squarings.
//
// Sized by `exp_bits`, the largest exponent bit-length the table covers
// (the ElGamal subgroup order |q| for key material). Larger exponents fall
// back to plain square-and-multiply rather than reading out of range.
template <typename G>
class FixedBaseTable {
 public:
  static constexpr size_t kWindowBits = 6;
  static constexpr size_t kDigits = (size_t{1} << kWindowBits) - 1;  // 1..63

  FixedBaseTable() = default;

  FixedBaseTable(const G& base, size_t exp_bits)
      : base_(base), exp_bits_(exp_bits) {
    size_t windows = (exp_bits + kWindowBits - 1) / kWindowBits;
    table_.resize(windows * kDigits);
    G window_base = base;  // base^(2^(j*w)) for the current window j
    for (size_t j = 0; j < windows; j++) {
      G* row = &table_[j * kDigits];
      row[0] = window_base;
      for (size_t d = 1; d < kDigits; d++) {
        row[d] = row[d - 1] * window_base;
      }
      if (j + 1 < windows) {
        window_base = row[kDigits - 1] * window_base;  // base^(2^((j+1)*w))
      }
    }
  }

  const G& base() const { return base_; }
  size_t exp_bits() const { return exp_bits_; }

  // base^e, bit-identical to base.Pow(e).
  template <size_t M>
  G Pow(const BigInt<M>& e) const {
    if (table_.empty() || e.BitLength() > exp_bits_) {
      return base_.Pow(e);  // exponent outside the precomputed range
    }
    G r = G::One();
    size_t windows = table_.size() / kDigits;
    for (size_t j = 0; j < windows; j++) {
      uint64_t d =
          multiexp_internal::ExtractBits(e, j * kWindowBits, kWindowBits);
      if (d != 0) {
        r = r * table_[j * kDigits + (d - 1)];
      }
    }
    return r;
  }

 private:
  G base_{};
  size_t exp_bits_ = 0;
  std::vector<G> table_;  // row j, entry d-1: base^(d << j*w)
};

// Pippenger bucket multi-exponentiation: prod_i bases[i]^{exps[i]} over
// group G with BigInt<M> exponents. Zero exponents are skipped (matching the
// naive path's skip, and the common all-zero degenerate query vectors).
template <typename G, size_t M>
G MultiExpBigInt(const G* bases, const BigInt<M>* exps, size_t n) {
  if (n == 0) {
    return G::One();
  }
  size_t bits = 0;
  size_t nonzero = 0;
  for (size_t i = 0; i < n; i++) {
    size_t b = exps[i].BitLength();
    if (b > 0) {
      nonzero++;
      if (b > bits) {
        bits = b;
      }
    }
  }
  if (nonzero == 0) {
    return G::One();
  }
  size_t c = PippengerWindowBits(nonzero, bits);
  size_t windows = (bits + c - 1) / c;
  std::vector<G> buckets(size_t{1} << c, G::One());

  G acc = G::One();
  for (size_t j = windows; j-- > 0;) {
    if (j + 1 < windows) {
      for (size_t s = 0; s < c; s++) {
        acc = acc.Square();
      }
    }
    bool touched = false;
    for (size_t i = 0; i < n; i++) {
      uint64_t d = multiexp_internal::ExtractBits(exps[i], j * c, c);
      if (d != 0) {
        buckets[d] = buckets[d] * bases[i];
        touched = true;
      }
    }
    if (!touched) {
      continue;
    }
    // Fold buckets: sum_d d * B_d as a running suffix product. `running`
    // walks prod_{d' >= d} B_{d'}; multiplying it into `window_sum` once per
    // d weights each bucket by its digit value.
    G running = G::One();
    G window_sum = G::One();
    bool running_nontrivial = false;
    for (size_t d = buckets.size() - 1; d >= 1; d--) {
      if (!buckets[d].IsOne()) {
        running = running * buckets[d];
        running_nontrivial = true;
        buckets[d] = G::One();  // reset for the next window
      }
      if (running_nontrivial) {
        window_sum = window_sum * running;
      }
    }
    acc = acc * window_sum;
  }
  return acc;
}

// Field-scalar front end: canonicalizes the scalars once, then runs the
// bucket kernel. `workers` > 1 chunks the terms across ParallelFor threads
// and combines the partial products (exact group arithmetic, so the result
// is independent of the split).
template <typename G, typename F>
G MultiExp(const G* bases, const F* scalars, size_t n, size_t workers = 1) {
  using Exp = typename F::Repr;
  // Metrics are recorded at the front end only: ParallelFor workers have no
  // ambient metrics installed, so the kernel stays hook-free.
  obs::MetricAdd("multiexp.calls");
  obs::MetricObserve("multiexp.terms", n);
  obs::MetricObserve("multiexp.window_bits",
                     PippengerWindowBits(n, Exp::kBits));
  std::vector<Exp> exps(n);
  for (size_t i = 0; i < n; i++) {
    exps[i] = scalars[i].ToCanonical();
  }
  if (workers <= 1 || n < 2 * workers) {
    return MultiExpBigInt(bases, exps.data(), n);
  }
  size_t chunk = (n + workers - 1) / workers;
  size_t chunks = (n + chunk - 1) / chunk;
  std::vector<G> partial(chunks, G::One());
  ParallelFor(chunks, workers, [&](size_t k) {
    size_t lo = k * chunk;
    size_t hi = lo + chunk < n ? lo + chunk : n;
    partial[k] = MultiExpBigInt(bases + lo, exps.data() + lo, hi - lo);
  });
  G acc = G::One();
  for (const G& p : partial) {
    acc = acc * p;
  }
  return acc;
}

}  // namespace zaatar

#endif  // SRC_CRYPTO_MULTIEXP_H_
