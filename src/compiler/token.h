// Token definitions for zlang, the C-like source language this repository
// compiles to constraints (standing in for the paper's SFDL frontend; see
// DESIGN.md §5).

#ifndef SRC_COMPILER_TOKEN_H_
#define SRC_COMPILER_TOKEN_H_

#include <cstdint>
#include <string>

namespace zaatar {

enum class TokenKind {
  kEnd,
  kIdentifier,
  kIntLiteral,
  // keywords
  kProgram,
  kInput,
  kOutput,
  kVar,
  kConst,
  kIf,
  kElse,
  kFor,
  kIn,
  kTrue,
  kFalse,
  kIntType,       // int8 / int16 / int32 / int64 / int<N>
  kBoolType,
  kRationalType,  // rational<Wn, Wd>
  kFunc,
  kReturn,
  kAssert,
  // punctuation / operators
  kLParen,
  kRParen,
  kLBrace,
  kRBrace,
  kLBracket,
  kRBracket,
  kLess,
  kLessEq,
  kGreater,
  kGreaterEq,
  kEqEq,
  kNotEq,
  kAssign,
  kPlus,
  kMinus,
  kStar,
  kSlash,
  kPercent,
  kAndAnd,
  kOrOr,
  kNot,
  kShl,  // <<
  kShr,  // >>
  kAmp,
  kPipe,
  kCaret,
  kQuestion,
  kColon,
  kSemicolon,
  kComma,
  kDotDot,  // ..
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;     // identifier name / literal text
  int64_t int_value = 0;  // for kIntLiteral and sized int types (the width)
  size_t line = 0;
  size_t column = 0;
};

// Human-readable token name for diagnostics.
const char* TokenKindName(TokenKind kind);

}  // namespace zaatar

#endif  // SRC_COMPILER_TOKEN_H_
