// Hand-written lexer for zlang. Supports // line comments and /* block
// comments */. Reports errors by throwing CompileError (caught at the
// Compile() API boundary).

#ifndef SRC_COMPILER_LEXER_H_
#define SRC_COMPILER_LEXER_H_

#include <stdexcept>
#include <string>
#include <vector>

#include "src/compiler/token.h"

namespace zaatar {

// All frontend errors (lexing, parsing, type checking, constraint
// generation) are reported as CompileError with source position in what().
class CompileError : public std::runtime_error {
 public:
  CompileError(const std::string& message, size_t line, size_t column)
      : std::runtime_error("line " + std::to_string(line) + ":" +
                           std::to_string(column) + ": " + message),
        line_(line),
        column_(column) {}

  size_t line() const { return line_; }
  size_t column() const { return column_; }

 private:
  size_t line_;
  size_t column_;
};

std::vector<Token> Lex(const std::string& source);

}  // namespace zaatar

#endif  // SRC_COMPILER_LEXER_H_
