// Recursive-descent parser for zlang (grammar in ast.h).

#ifndef SRC_COMPILER_PARSER_H_
#define SRC_COMPILER_PARSER_H_

#include <string>

#include "src/compiler/ast.h"
#include "src/compiler/lexer.h"

namespace zaatar {

// Throws CompileError on malformed input.
ProgramAst Parse(const std::string& source);

}  // namespace zaatar

#endif  // SRC_COMPILER_PARSER_H_
