#include "src/compiler/parser.h"

#include <utility>

namespace zaatar {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  ProgramAst ParseProgram() {
    ProgramAst prog;
    if (Check(TokenKind::kProgram)) {
      Next();
      prog.name = Expect(TokenKind::kIdentifier).text;
      Expect(TokenKind::kSemicolon);
    }
    while (Check(TokenKind::kInput) || Check(TokenKind::kOutput) ||
           Check(TokenKind::kVar) || Check(TokenKind::kConst) ||
           Check(TokenKind::kFunc)) {
      if (Check(TokenKind::kFunc)) {
        prog.functions.push_back(ParseFunction());
      } else {
        prog.decls.push_back(ParseDeclaration());
      }
    }
    while (!Check(TokenKind::kEnd)) {
      prog.body.push_back(ParseStatement());
    }
    return prog;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Next() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }
  bool Check(TokenKind kind) const { return Peek().kind == kind; }
  bool Accept(TokenKind kind) {
    if (Check(kind)) {
      Next();
      return true;
    }
    return false;
  }
  const Token& Expect(TokenKind kind) {
    if (!Check(kind)) {
      throw CompileError(std::string("expected ") + TokenKindName(kind) +
                             " but found " + TokenKindName(Peek().kind),
                         Peek().line, Peek().column);
    }
    return Next();
  }

  Declaration ParseDeclaration() {
    Declaration d;
    const Token& intro = Next();
    d.line = intro.line;
    d.column = intro.column;
    switch (intro.kind) {
      case TokenKind::kInput: d.kind = Declaration::Kind::kInput; break;
      case TokenKind::kOutput: d.kind = Declaration::Kind::kOutput; break;
      case TokenKind::kVar: d.kind = Declaration::Kind::kLocal; break;
      case TokenKind::kConst: {
        d.kind = Declaration::Kind::kConstant;
        d.name = Expect(TokenKind::kIdentifier).text;
        Expect(TokenKind::kAssign);
        d.init = ParseExpr();
        Expect(TokenKind::kSemicolon);
        return d;
      }
      default:
        throw CompileError("expected declaration", intro.line, intro.column);
    }
    ParseType(&d);
    d.name = Expect(TokenKind::kIdentifier).text;
    while (Accept(TokenKind::kLBracket)) {
      d.dim_exprs.push_back(ParseExpr());
      Expect(TokenKind::kRBracket);
    }
    if (Accept(TokenKind::kAssign)) {
      d.init = ParseExpr();
    }
    Expect(TokenKind::kSemicolon);
    return d;
  }

  // Width expressions stop below comparison/shift precedence so the closing
  // '>' is not eaten as an operator.
  void ParseTypeInto(TypeNode* type, ExprPtr* width_expr,
                     ExprPtr* den_width_expr) {
    const Token& t = Next();
    switch (t.kind) {
      case TokenKind::kIntType:
        type->kind = TypeNode::Kind::kInt;
        if (t.int_value != 0) {
          type->width = static_cast<size_t>(t.int_value);
        } else {
          Expect(TokenKind::kLess);
          *width_expr = ParseAdditive();
          Expect(TokenKind::kGreater);
        }
        break;
      case TokenKind::kBoolType:
        type->kind = TypeNode::Kind::kBool;
        type->width = 1;
        break;
      case TokenKind::kRationalType:
        type->kind = TypeNode::Kind::kRational;
        Expect(TokenKind::kLess);
        *width_expr = ParseAdditive();
        Expect(TokenKind::kComma);
        *den_width_expr = ParseAdditive();
        Expect(TokenKind::kGreater);
        break;
      default:
        throw CompileError("expected a type", t.line, t.column);
    }
  }

  void ParseType(Declaration* d) {
    ParseTypeInto(&d->type, &d->width_expr, &d->den_width_expr);
  }

  FunctionDecl ParseFunction() {
    FunctionDecl f;
    const Token& intro = Expect(TokenKind::kFunc);
    f.line = intro.line;
    f.column = intro.column;
    ExprPtr ret_width, ret_den;  // return type widths are advisory
    ParseTypeInto(&f.return_type, &ret_width, &ret_den);
    f.name = Expect(TokenKind::kIdentifier).text;
    Expect(TokenKind::kLParen);
    if (!Check(TokenKind::kRParen)) {
      do {
        FunctionDecl::Param p;
        ParseTypeInto(&p.type, &p.width_expr, &p.den_width_expr);
        p.name = Expect(TokenKind::kIdentifier).text;
        f.params.push_back(std::move(p));
      } while (Accept(TokenKind::kComma));
    }
    Expect(TokenKind::kRParen);
    f.body = ParseBlock();
    if (f.body.empty() || f.body.back()->kind != Stmt::Kind::kReturn) {
      throw CompileError(
          "function body must end with a 'return' statement", f.line,
          f.column);
    }
    return f;
  }

  StmtPtr ParseStatement() {
    const Token& t = Peek();
    if (t.kind == TokenKind::kAssert) {
      auto s = NewStmt(Stmt::Kind::kAssert);
      Next();
      s->value = ParseExpr();
      Expect(TokenKind::kSemicolon);
      return s;
    }
    if (t.kind == TokenKind::kReturn) {
      auto s = NewStmt(Stmt::Kind::kReturn);
      Next();
      s->value = ParseExpr();
      Expect(TokenKind::kSemicolon);
      return s;
    }
    if (t.kind == TokenKind::kVar) {
      auto s = NewStmt(Stmt::Kind::kVarDecl);
      s->decl = std::make_unique<Declaration>(ParseDeclaration());
      return s;
    }
    if (t.kind == TokenKind::kIf) {
      return ParseIf();
    }
    if (t.kind == TokenKind::kFor) {
      return ParseFor();
    }
    if (t.kind == TokenKind::kLBrace) {
      auto s = NewStmt(Stmt::Kind::kBlock);
      s->body = ParseBlock();
      return s;
    }
    // Assignment.
    auto s = NewStmt(Stmt::Kind::kAssign);
    s->name = Expect(TokenKind::kIdentifier).text;
    while (Accept(TokenKind::kLBracket)) {
      s->indices.push_back(ParseExpr());
      Expect(TokenKind::kRBracket);
    }
    Expect(TokenKind::kAssign);
    s->value = ParseExpr();
    Expect(TokenKind::kSemicolon);
    return s;
  }

  StmtPtr ParseIf() {
    auto s = NewStmt(Stmt::Kind::kIf);
    Expect(TokenKind::kIf);
    Expect(TokenKind::kLParen);
    s->value = ParseExpr();
    Expect(TokenKind::kRParen);
    s->body = ParseBlock();
    if (Accept(TokenKind::kElse)) {
      if (Check(TokenKind::kIf)) {
        s->else_body.push_back(ParseIf());
      } else {
        s->else_body = ParseBlock();
      }
    }
    return s;
  }

  StmtPtr ParseFor() {
    auto s = NewStmt(Stmt::Kind::kFor);
    Expect(TokenKind::kFor);
    s->name = Expect(TokenKind::kIdentifier).text;
    Expect(TokenKind::kIn);
    s->lo = ParseExpr();
    Expect(TokenKind::kDotDot);
    s->hi = ParseExpr();
    s->body = ParseBlock();
    return s;
  }

  std::vector<StmtPtr> ParseBlock() {
    Expect(TokenKind::kLBrace);
    std::vector<StmtPtr> body;
    while (!Check(TokenKind::kRBrace)) {
      body.push_back(ParseStatement());
    }
    Expect(TokenKind::kRBrace);
    return body;
  }

  // --- expressions, by precedence ---

  ExprPtr ParseExpr() { return ParseTernary(); }

  ExprPtr ParseTernary() {
    ExprPtr cond = ParseOr();
    if (!Accept(TokenKind::kQuestion)) {
      return cond;
    }
    auto e = NewExpr(Expr::Kind::kTernary);
    ExprPtr then = ParseExpr();
    Expect(TokenKind::kColon);
    ExprPtr other = ParseTernary();
    e->children.push_back(std::move(cond));
    e->children.push_back(std::move(then));
    e->children.push_back(std::move(other));
    return e;
  }

  ExprPtr ParseOr() {
    ExprPtr lhs = ParseAnd();
    while (Check(TokenKind::kOrOr)) {
      TokenKind op = Next().kind;
      ExprPtr rhs = ParseAnd();
      lhs = Binary(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  ExprPtr ParseAnd() {
    ExprPtr lhs = ParseBitOr();
    while (Check(TokenKind::kAndAnd)) {
      TokenKind op = Next().kind;
      ExprPtr rhs = ParseBitOr();
      lhs = Binary(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  ExprPtr ParseBitOr() {
    ExprPtr lhs = ParseBitXor();
    while (Check(TokenKind::kPipe)) {
      TokenKind op = Next().kind;
      ExprPtr rhs = ParseBitXor();
      lhs = Binary(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  ExprPtr ParseBitXor() {
    ExprPtr lhs = ParseBitAnd();
    while (Check(TokenKind::kCaret)) {
      TokenKind op = Next().kind;
      ExprPtr rhs = ParseBitAnd();
      lhs = Binary(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  ExprPtr ParseBitAnd() {
    ExprPtr lhs = ParseComparison();
    while (Check(TokenKind::kAmp)) {
      TokenKind op = Next().kind;
      ExprPtr rhs = ParseComparison();
      lhs = Binary(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  ExprPtr ParseComparison() {
    ExprPtr lhs = ParseShift();
    switch (Peek().kind) {
      case TokenKind::kLess:
      case TokenKind::kLessEq:
      case TokenKind::kGreater:
      case TokenKind::kGreaterEq:
      case TokenKind::kEqEq:
      case TokenKind::kNotEq: {
        TokenKind op = Next().kind;
        ExprPtr rhs = ParseShift();
        return Binary(op, std::move(lhs), std::move(rhs));
      }
      default:
        return lhs;
    }
  }

  ExprPtr ParseShift() {
    ExprPtr lhs = ParseAdditive();
    while (Check(TokenKind::kShl) || Check(TokenKind::kShr)) {
      TokenKind op = Next().kind;
      ExprPtr rhs = ParseAdditive();
      lhs = Binary(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  ExprPtr ParseAdditive() {
    ExprPtr lhs = ParseMultiplicative();
    while (Check(TokenKind::kPlus) || Check(TokenKind::kMinus)) {
      TokenKind op = Next().kind;
      ExprPtr rhs = ParseMultiplicative();
      lhs = Binary(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  ExprPtr ParseMultiplicative() {
    ExprPtr lhs = ParseUnary();
    while (Check(TokenKind::kStar) || Check(TokenKind::kSlash) ||
           Check(TokenKind::kPercent)) {
      TokenKind op = Next().kind;
      ExprPtr rhs = ParseUnary();
      lhs = Binary(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  ExprPtr ParseUnary() {
    if (Check(TokenKind::kMinus) || Check(TokenKind::kNot)) {
      auto e = NewExpr(Expr::Kind::kUnary);
      e->op = Next().kind;
      e->children.push_back(ParseUnary());
      return e;
    }
    return ParsePrimary();
  }

  ExprPtr ParsePrimary() {
    const Token& t = Peek();
    switch (t.kind) {
      case TokenKind::kIntLiteral: {
        auto e = NewExpr(Expr::Kind::kIntLit);
        e->int_value = Next().int_value;
        return e;
      }
      case TokenKind::kTrue:
      case TokenKind::kFalse: {
        auto e = NewExpr(Expr::Kind::kBoolLit);
        e->int_value = Next().kind == TokenKind::kTrue ? 1 : 0;
        return e;
      }
      case TokenKind::kLParen: {
        Next();
        ExprPtr e = ParseExpr();
        Expect(TokenKind::kRParen);
        return e;
      }
      case TokenKind::kIdentifier: {
        if (Peek(1).kind == TokenKind::kLParen) {
          auto e = NewExpr(Expr::Kind::kCall);
          e->name = Next().text;
          Next();  // '('
          if (!Check(TokenKind::kRParen)) {
            e->children.push_back(ParseExpr());
            while (Accept(TokenKind::kComma)) {
              e->children.push_back(ParseExpr());
            }
          }
          Expect(TokenKind::kRParen);
          return e;
        }
        auto ref = NewExpr(Expr::Kind::kVarRef);
        ref->name = Next().text;
        if (Check(TokenKind::kLBracket)) {
          auto idx = NewExpr(Expr::Kind::kIndex);
          idx->children.push_back(std::move(ref));
          while (Accept(TokenKind::kLBracket)) {
            idx->children.push_back(ParseExpr());
            Expect(TokenKind::kRBracket);
          }
          return idx;
        }
        return ref;
      }
      default:
        throw CompileError(std::string("unexpected ") +
                               TokenKindName(t.kind) + " in expression",
                           t.line, t.column);
    }
  }

  ExprPtr NewExpr(Expr::Kind kind) {
    auto e = std::make_unique<Expr>();
    e->kind = kind;
    e->line = Peek().line;
    e->column = Peek().column;
    return e;
  }

  StmtPtr NewStmt(Stmt::Kind kind) {
    auto s = std::make_unique<Stmt>();
    s->kind = kind;
    s->line = Peek().line;
    s->column = Peek().column;
    return s;
  }

  ExprPtr Binary(TokenKind op, ExprPtr lhs, ExprPtr rhs) {
    auto e = std::make_unique<Expr>();
    e->kind = Expr::Kind::kBinary;
    e->op = op;
    e->line = lhs->line;
    e->column = lhs->column;
    e->children.push_back(std::move(lhs));
    e->children.push_back(std::move(rhs));
    return e;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

ProgramAst Parse(const std::string& source) {
  Parser parser(Lex(source));
  return parser.ParseProgram();
}

}  // namespace zaatar
