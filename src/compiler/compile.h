// Public compiler API: zlang source -> constraints + witness solver + IO
// metadata, in both encodings (Ginger degree-2 and Zaatar quadratic form).

#ifndef SRC_COMPILER_COMPILE_H_
#define SRC_COMPILER_COMPILE_H_

#include <string>
#include <utility>
#include <vector>

#include "src/compiler/evaluator.h"
#include "src/compiler/parser.h"
#include "src/constraints/transform.h"
#include "src/obs/trace.h"

namespace zaatar {

template <typename F>
struct CompiledProgram {
  std::string name;
  GingerSystem<F> ginger;
  ZaatarTransform<F> zaatar;  // r1cs + auxiliary-product bookkeeping
  std::vector<SolverOp<F>> solver;
  std::vector<IoSlotSpec> inputs;
  std::vector<IoSlotSpec> outputs;

  // ----- encoding statistics (Figure 9 columns) -----
  size_t ZGinger() const { return ginger.layout.num_unbound; }
  size_t CGinger() const { return ginger.NumConstraints(); }
  size_t ZZaatar() const { return zaatar.r1cs.layout.num_unbound; }
  size_t CZaatar() const { return zaatar.r1cs.NumConstraints(); }
  size_t UGinger() const { return ZGinger() + ZGinger() * ZGinger(); }
  size_t UZaatar() const { return ZZaatar() + CZaatar() + 1; }

  // ----- witness generation (the prover's "solve constraints" phase) -----

  // Given the input field elements (one per input slot, see `inputs`),
  // produces the full Ginger assignment: unbound variables, then inputs,
  // then the computed outputs.
  std::vector<F> SolveGinger(const std::vector<F>& input_values) const {
    if (input_values.size() != ginger.layout.num_inputs) {
      throw std::runtime_error("wrong number of input values");
    }
    std::vector<F> w(ginger.layout.Total(), F::Zero());
    for (size_t i = 0; i < input_values.size(); i++) {
      w[ginger.layout.FirstInput() + i] = input_values[i];
    }
    RunSolver(solver, &w);
    return w;
  }

  // The corresponding Zaatar (quadratic-form) assignment.
  std::vector<F> SolveZaatar(const std::vector<F>& ginger_assignment) const {
    return zaatar.ExtendAssignment(ginger_assignment);
  }

  std::vector<F> ExtractOutputs(const std::vector<F>& ginger_assignment)
      const {
    return std::vector<F>(
        ginger_assignment.begin() + ginger.layout.FirstOutput(),
        ginger_assignment.end());
  }

  // Bound values (inputs then outputs) as the verifier consumes them.
  std::vector<F> BoundValues(const std::vector<F>& input_values,
                             const std::vector<F>& output_values) const {
    std::vector<F> b = input_values;
    b.insert(b.end(), output_values.begin(), output_values.end());
    return b;
  }
};

// Field-element encoding of typed runtime values.
template <typename F>
F EncodeSignedInt(int64_t v) {
  return F::FromInt(v);
}

// Decodes assuming |value| < 2^62 (true for all benchmark outputs).
template <typename F>
int64_t DecodeSignedInt(const F& v) {
  typename F::Repr c = v.ToCanonical();
  typename F::Repr half = F::kModulus;
  half.Shr1InPlace();
  if (c > half) {  // negative: value - p
    typename F::Repr neg = F::kModulus;
    neg.SubInPlace(c);
    return -static_cast<int64_t>(neg.limbs[0]);
  }
  return static_cast<int64_t>(c.limbs[0]);
}

// Compiles zlang source. Throws CompileError with position info on invalid
// programs.
template <typename F>
CompiledProgram<F> CompileZlang(const std::string& source,
                                const TransformOptions& options = {}) {
  obs::Span span("compiler.compile");
  ProgramAst ast = [&] {
    obs::Span parse("compiler.parse");
    return Parse(source);
  }();
  CompiledProgram<F> p;
  {
    obs::Span lower("compiler.lower");
    Evaluator<F> evaluator(ast);
    EvaluationResult<F> result = evaluator.Run();
    p.name = ast.name;
    p.ginger = std::move(result.system);
    p.solver = std::move(result.solver);
    p.inputs = std::move(result.inputs);
    p.outputs = std::move(result.outputs);
  }
  {
    obs::Span transform("compiler.to_zaatar");
    p.zaatar = GingerToZaatar(p.ginger, options);
  }
  return p;
}

}  // namespace zaatar

#endif  // SRC_COMPILER_COMPILE_H_
