#include "src/compiler/lexer.h"

#include <cctype>
#include <map>

namespace zaatar {

const char* TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kEnd: return "<end>";
    case TokenKind::kIdentifier: return "identifier";
    case TokenKind::kIntLiteral: return "integer literal";
    case TokenKind::kProgram: return "'program'";
    case TokenKind::kInput: return "'input'";
    case TokenKind::kOutput: return "'output'";
    case TokenKind::kVar: return "'var'";
    case TokenKind::kConst: return "'const'";
    case TokenKind::kIf: return "'if'";
    case TokenKind::kElse: return "'else'";
    case TokenKind::kFor: return "'for'";
    case TokenKind::kIn: return "'in'";
    case TokenKind::kTrue: return "'true'";
    case TokenKind::kFalse: return "'false'";
    case TokenKind::kIntType: return "int type";
    case TokenKind::kBoolType: return "'bool'";
    case TokenKind::kRationalType: return "'rational'";
    case TokenKind::kFunc: return "'func'";
    case TokenKind::kReturn: return "'return'";
    case TokenKind::kAssert: return "'assert'";
    case TokenKind::kLParen: return "'('";
    case TokenKind::kRParen: return "')'";
    case TokenKind::kLBrace: return "'{'";
    case TokenKind::kRBrace: return "'}'";
    case TokenKind::kLBracket: return "'['";
    case TokenKind::kRBracket: return "']'";
    case TokenKind::kLess: return "'<'";
    case TokenKind::kLessEq: return "'<='";
    case TokenKind::kGreater: return "'>'";
    case TokenKind::kGreaterEq: return "'>='";
    case TokenKind::kEqEq: return "'=='";
    case TokenKind::kNotEq: return "'!='";
    case TokenKind::kAssign: return "'='";
    case TokenKind::kPlus: return "'+'";
    case TokenKind::kMinus: return "'-'";
    case TokenKind::kStar: return "'*'";
    case TokenKind::kSlash: return "'/'";
    case TokenKind::kPercent: return "'%'";
    case TokenKind::kAndAnd: return "'&&'";
    case TokenKind::kOrOr: return "'||'";
    case TokenKind::kNot: return "'!'";
    case TokenKind::kShl: return "'<<'";
    case TokenKind::kShr: return "'>>'";
    case TokenKind::kAmp: return "'&'";
    case TokenKind::kPipe: return "'|'";
    case TokenKind::kCaret: return "'^'";
    case TokenKind::kQuestion: return "'?'";
    case TokenKind::kColon: return "':'";
    case TokenKind::kSemicolon: return "';'";
    case TokenKind::kComma: return "','";
    case TokenKind::kDotDot: return "'..'";
  }
  return "<unknown>";
}

namespace {

const std::map<std::string, TokenKind>& Keywords() {
  static const std::map<std::string, TokenKind> kKeywords = {
      {"program", TokenKind::kProgram}, {"input", TokenKind::kInput},
      {"output", TokenKind::kOutput},   {"var", TokenKind::kVar},
      {"const", TokenKind::kConst},     {"if", TokenKind::kIf},
      {"else", TokenKind::kElse},       {"for", TokenKind::kFor},
      {"in", TokenKind::kIn},           {"true", TokenKind::kTrue},
      {"false", TokenKind::kFalse},     {"bool", TokenKind::kBoolType},
      {"rational", TokenKind::kRationalType},
      {"func", TokenKind::kFunc},
      {"return", TokenKind::kReturn},
      {"assert", TokenKind::kAssert},
  };
  return kKeywords;
}

// int8/int16/int32/int64 map to kIntType with the width in int_value; the
// generic form int<N> is handled by the parser (kIntType with value 0).
bool SizedIntKeyword(const std::string& word, int64_t* width) {
  if (word == "int") {
    *width = 0;  // width follows as <N>
    return true;
  }
  if (word == "int8") { *width = 8; return true; }
  if (word == "int16") { *width = 16; return true; }
  if (word == "int32") { *width = 32; return true; }
  if (word == "int64") { *width = 64; return true; }
  return false;
}

}  // namespace

std::vector<Token> Lex(const std::string& source) {
  std::vector<Token> tokens;
  size_t line = 1, col = 1;
  size_t i = 0;
  const size_t n = source.size();

  auto make = [&](TokenKind kind) {
    Token t;
    t.kind = kind;
    t.line = line;
    t.column = col;
    return t;
  };
  auto advance = [&](size_t count = 1) {
    for (size_t k = 0; k < count && i < n; k++) {
      if (source[i] == '\n') {
        line++;
        col = 1;
      } else {
        col++;
      }
      i++;
    }
  };

  while (i < n) {
    char ch = source[i];
    if (std::isspace(static_cast<unsigned char>(ch))) {
      advance();
      continue;
    }
    // Comments.
    if (ch == '/' && i + 1 < n && source[i + 1] == '/') {
      while (i < n && source[i] != '\n') {
        advance();
      }
      continue;
    }
    if (ch == '/' && i + 1 < n && source[i + 1] == '*') {
      advance(2);
      while (i + 1 < n && !(source[i] == '*' && source[i + 1] == '/')) {
        advance();
      }
      if (i + 1 >= n) {
        throw CompileError("unterminated block comment", line, col);
      }
      advance(2);
      continue;
    }
    // Identifiers and keywords.
    if (std::isalpha(static_cast<unsigned char>(ch)) || ch == '_') {
      Token t = make(TokenKind::kIdentifier);
      size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(source[i])) ||
                       source[i] == '_')) {
        advance();
      }
      t.text = source.substr(start, i - start);
      auto kw = Keywords().find(t.text);
      int64_t width = 0;
      if (kw != Keywords().end()) {
        t.kind = kw->second;
      } else if (SizedIntKeyword(t.text, &width)) {
        t.kind = TokenKind::kIntType;
        t.int_value = width;
      }
      tokens.push_back(std::move(t));
      continue;
    }
    // Integer literals (decimal).
    if (std::isdigit(static_cast<unsigned char>(ch))) {
      Token t = make(TokenKind::kIntLiteral);
      size_t start = i;
      while (i < n && std::isdigit(static_cast<unsigned char>(source[i]))) {
        advance();
      }
      t.text = source.substr(start, i - start);
      t.int_value = std::stoll(t.text);
      tokens.push_back(std::move(t));
      continue;
    }
    // Operators / punctuation.
    auto two = [&](char a, char b) {
      return ch == a && i + 1 < n && source[i + 1] == b;
    };
    Token t = make(TokenKind::kEnd);
    if (two('<', '<')) { t.kind = TokenKind::kShl; advance(2); }
    else if (two('>', '>')) { t.kind = TokenKind::kShr; advance(2); }
    else if (two('<', '=')) { t.kind = TokenKind::kLessEq; advance(2); }
    else if (two('>', '=')) { t.kind = TokenKind::kGreaterEq; advance(2); }
    else if (two('=', '=')) { t.kind = TokenKind::kEqEq; advance(2); }
    else if (two('!', '=')) { t.kind = TokenKind::kNotEq; advance(2); }
    else if (two('&', '&')) { t.kind = TokenKind::kAndAnd; advance(2); }
    else if (two('|', '|')) { t.kind = TokenKind::kOrOr; advance(2); }
    else if (two('.', '.')) { t.kind = TokenKind::kDotDot; advance(2); }
    else {
      switch (ch) {
        case '(': t.kind = TokenKind::kLParen; break;
        case ')': t.kind = TokenKind::kRParen; break;
        case '{': t.kind = TokenKind::kLBrace; break;
        case '}': t.kind = TokenKind::kRBrace; break;
        case '[': t.kind = TokenKind::kLBracket; break;
        case ']': t.kind = TokenKind::kRBracket; break;
        case '<': t.kind = TokenKind::kLess; break;
        case '>': t.kind = TokenKind::kGreater; break;
        case '=': t.kind = TokenKind::kAssign; break;
        case '+': t.kind = TokenKind::kPlus; break;
        case '-': t.kind = TokenKind::kMinus; break;
        case '*': t.kind = TokenKind::kStar; break;
        case '/': t.kind = TokenKind::kSlash; break;
        case '%': t.kind = TokenKind::kPercent; break;
        case '!': t.kind = TokenKind::kNot; break;
        case '&': t.kind = TokenKind::kAmp; break;
        case '|': t.kind = TokenKind::kPipe; break;
        case '^': t.kind = TokenKind::kCaret; break;
        case '?': t.kind = TokenKind::kQuestion; break;
        case ':': t.kind = TokenKind::kColon; break;
        case ';': t.kind = TokenKind::kSemicolon; break;
        case ',': t.kind = TokenKind::kComma; break;
        default:
          throw CompileError(std::string("unexpected character '") + ch + "'",
                             line, col);
      }
      advance();
    }
    tokens.push_back(std::move(t));
  }
  tokens.push_back(make(TokenKind::kEnd));
  return tokens;
}

}  // namespace zaatar
