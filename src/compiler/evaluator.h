// The evaluator: symbolic execution of a zlang AST into constraints.
//
// Control flow is resolved at compile time wherever possible — loops have
// static bounds and are unrolled; `if` over a static condition compiles one
// arm. Runtime conditions compile both arms and merge every written variable
// with a mux (b + c·(a-b)), which is free for values the branches agree on.
// Array accesses with static indices are direct; runtime indices expand to
// equality-selector chains (one IsZero per slot) — the "excessive number of
// constraints" for indirect memory access that §5.4 discusses.

#ifndef SRC_COMPILER_EVALUATOR_H_
#define SRC_COMPILER_EVALUATOR_H_

#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/compiler/ast.h"
#include "src/compiler/builder.h"
#include "src/compiler/values.h"

namespace zaatar {

// Where an input/output field element comes from, for runtime encoding.
struct IoSlotSpec {
  enum class Kind { kInt, kBool, kRatNum, kRatDen };
  std::string name;
  Kind kind = Kind::kInt;
  size_t width = 32;
};

template <typename F>
struct EvaluationResult {
  GingerSystem<F> system;
  std::vector<SolverOp<F>> solver;
  std::vector<IoSlotSpec> inputs;
  std::vector<IoSlotSpec> outputs;
};

template <typename F>
class Evaluator {
 public:
  using LC = LinearCombination<F>;
  using IV = IntVal<F>;
  using BV = BoolVal<F>;
  using RV = RatVal<F>;
  using AV = ArrayVal<F>;
  using V = Value<F>;

  // Comparisons need width+1 decomposition plus shift headroom.
  static constexpr double kMaxWidth = static_cast<double>(F::kModulusBits - 4);

  explicit Evaluator(const ProgramAst& ast) : ast_(&ast) {}

  EvaluationResult<F> Run() {
    for (const auto& f : ast_->functions) {
      if (functions_.count(f.name) != 0) {
        throw CompileError("redefinition of function '" + f.name + "'",
                           f.line, f.column);
      }
      functions_.emplace(f.name, &f);
    }
    for (const auto& d : ast_->decls) {
      Declare(d);
    }
    for (const auto& s : ast_->body) {
      Exec(*s);
    }
    BindOutputs();
    auto fin = builder_.Finalize();
    EvaluationResult<F> r;
    r.system = std::move(fin.system);
    r.solver = std::move(fin.solver);
    r.inputs = std::move(input_slots_);
    r.outputs = std::move(output_slots_);
    return r;
  }

 private:
  // ----- declarations -----

  void Declare(const Declaration& d) {
    if (env_.count(d.name) != 0) {
      throw CompileError("redeclaration of '" + d.name + "'", d.line,
                         d.column);
    }
    if (d.kind == Declaration::Kind::kConstant) {
      V v = Eval(*d.init);
      if (!v.IsInt() || !v.AsInt().IsStatic()) {
        throw CompileError("'const' requires a compile-time integer", d.line,
                           d.column);
      }
      env_.emplace(d.name, std::move(v));
      return;
    }

    TypeNode type = d.type;
    if (d.width_expr != nullptr) {
      type.width = static_cast<size_t>(EvalStaticInt(*d.width_expr));
    }
    if (d.den_width_expr != nullptr) {
      type.den_width = static_cast<size_t>(EvalStaticInt(*d.den_width_expr));
    }
    for (const auto& e : d.dim_exprs) {
      int64_t dim = EvalStaticInt(*e);
      if (dim <= 0) {
        throw CompileError("array dimension must be positive", d.line,
                           d.column);
      }
      type.dims.push_back(static_cast<size_t>(dim));
    }
    if (type.width > kMaxWidth || type.den_width > kMaxWidth) {
      throw CompileError("declared width exceeds field capacity", d.line,
                         d.column);
    }

    switch (d.kind) {
      case Declaration::Kind::kInput:
        env_.emplace(d.name, MakeIoValue(d.name, type));
        decl_types_.emplace(d.name, type);
        break;
      case Declaration::Kind::kOutput: {
        // Allocate output variable slots now (fixing output ordering), bind
        // values after the body runs.
        OutputBinding binding;
        binding.decl = &d;
        binding.type = type;
        size_t scalars = type.ElementCount() *
                         (type.kind == TypeNode::Kind::kRational ? 2 : 1);
        for (size_t i = 0; i < scalars; i++) {
          binding.vars.push_back(builder_.NewOutput());
        }
        AppendIoSlots(d.name, type, &output_slots_);
        output_bindings_.push_back(std::move(binding));
        env_.emplace(d.name, DefaultValue(type));
        decl_types_.emplace(d.name, type);
        break;
      }
      case Declaration::Kind::kLocal: {
        V init = d.init != nullptr ? Coerce(Eval(*d.init), type, d.line)
                                   : DefaultValue(type);
        env_.emplace(d.name, std::move(init));
        decl_types_.emplace(d.name, type);
        break;
      }
      case Declaration::Kind::kConstant:
        break;  // handled above
    }
  }

  V MakeIoValue(const std::string& name, const TypeNode& type) {
    AppendIoSlots(name, type, &input_slots_);
    if (!type.IsArray()) {
      return MakeScalarInput(type);
    }
    AV arr;
    arr.dims = type.dims;
    size_t count = type.ElementCount();
    arr.elems.reserve(count);
    for (size_t i = 0; i < count; i++) {
      arr.elems.push_back(MakeScalarInput(type));
    }
    return V(std::move(arr));
  }

  V MakeScalarInput(const TypeNode& type) {
    switch (type.kind) {
      case TypeNode::Kind::kInt: {
        IV v;
        v.lc = LC::Variable(builder_.NewInput());
        v.width = type.width;
        return V(v);
      }
      case TypeNode::Kind::kBool: {
        BV v;
        v.lc = LC::Variable(builder_.NewInput());
        return V(v);
      }
      case TypeNode::Kind::kRational: {
        RV v;
        v.num.lc = LC::Variable(builder_.NewInput());
        v.num.width = type.width;
        v.den.lc = LC::Variable(builder_.NewInput());
        v.den.width = type.den_width;
        return V(v);
      }
    }
    return V();
  }

  void AppendIoSlots(const std::string& name, const TypeNode& type,
                     std::vector<IoSlotSpec>* slots) {
    size_t count = type.ElementCount();
    for (size_t i = 0; i < count; i++) {
      std::string slot_name =
          type.IsArray() ? name + "[" + std::to_string(i) + "]" : name;
      switch (type.kind) {
        case TypeNode::Kind::kInt:
          slots->push_back({slot_name, IoSlotSpec::Kind::kInt, type.width});
          break;
        case TypeNode::Kind::kBool:
          slots->push_back({slot_name, IoSlotSpec::Kind::kBool, 1});
          break;
        case TypeNode::Kind::kRational:
          slots->push_back(
              {slot_name, IoSlotSpec::Kind::kRatNum, type.width});
          slots->push_back(
              {slot_name, IoSlotSpec::Kind::kRatDen, type.den_width});
          break;
      }
    }
  }

  V DefaultValue(const TypeNode& type) {
    V scalar;
    switch (type.kind) {
      case TypeNode::Kind::kInt: scalar = V(IV::Constant(0)); break;
      case TypeNode::Kind::kBool: scalar = V(BV::Constant(false)); break;
      case TypeNode::Kind::kRational:
        scalar = V(RV::FromInt(IV::Constant(0)));
        break;
    }
    if (!type.IsArray()) {
      return scalar;
    }
    AV arr;
    arr.dims = type.dims;
    arr.elems.assign(type.ElementCount(), scalar);
    return V(std::move(arr));
  }

  // Type adaptation on assignment/initialization: ints promote to rationals;
  // everything else must match kinds. Declared widths bound *inputs*;
  // computed values keep their tracked widths.
  V Coerce(V v, const TypeNode& type, size_t line) {
    if (type.kind == TypeNode::Kind::kRational && v.IsInt()) {
      return V(RV::FromInt(v.AsInt()));
    }
    bool ok = (type.kind == TypeNode::Kind::kInt && v.IsInt()) ||
              (type.kind == TypeNode::Kind::kBool && v.IsBool()) ||
              (type.kind == TypeNode::Kind::kRational && v.IsRational()) ||
              v.IsArray();
    if (!ok) {
      throw CompileError("type mismatch in assignment", line, 0);
    }
    return v;
  }

  // ----- statements -----

  void Exec(const Stmt& s) {
    builder_.SetSourceLine(s.line);
    switch (s.kind) {
      case Stmt::Kind::kBlock:
        for (const auto& child : s.body) {
          Exec(*child);
        }
        break;
      case Stmt::Kind::kAssign:
        ExecAssign(s);
        break;
      case Stmt::Kind::kIf:
        ExecIf(s);
        break;
      case Stmt::Kind::kFor:
        ExecFor(s);
        break;
      case Stmt::Kind::kAssert:
        ExecAssert(s);
        break;
      case Stmt::Kind::kVarDecl:
        // Statement-level `var`: redeclaration re-initializes (the same
        // statement executes repeatedly in unrolled loops and inlined
        // functions).
        env_.erase(s.decl->name);
        decl_types_.erase(s.decl->name);
        Declare(*s.decl);
        RecordWrite(s.decl->name);
        break;
      case Stmt::Kind::kReturn:
        if (call_depth_ == 0) {
          throw CompileError("'return' outside a function", s.line, s.column);
        }
        return_value_ = Eval(*s.value);
        break;
    }
  }

  // assert cond; — a verifier-enforced predicate: one linear constraint on
  // the boolean wire. A statically false assertion is a compile error; a
  // dynamically false one makes the constraints unsatisfiable, so no valid
  // proof exists for the offending input.
  void ExecAssert(const Stmt& s) {
    V cond = Eval(*s.value);
    if (!cond.IsBool()) {
      throw CompileError("assert requires a bool expression", s.line,
                         s.column);
    }
    const BV& c = cond.AsBool();
    if (c.IsStatic()) {
      if (!*c.static_value) {
        throw CompileError("assertion is statically false", s.line, s.column);
      }
      return;
    }
    builder_.AssertEqual(c.lc, LC(F::One()));
  }

  void ExecAssign(const Stmt& s) {
    if (env_.find(s.name) == env_.end()) {
      throw CompileError("assignment to undeclared '" + s.name + "'", s.line,
                         s.column);
    }
    RecordWrite(s.name);
    V rhs = Eval(*s.value);
    rhs = CoerceAssign(s.name, std::move(rhs), s.line);
    // Re-find: evaluating the RHS may have swapped env_ wholesale (inlined
    // function calls save/restore the environment).
    auto it = env_.find(s.name);
    if (it == env_.end()) {
      throw CompileError("assignment target vanished (internal)", s.line,
                         s.column);
    }
    if (s.indices.empty()) {
      it->second = std::move(rhs);
      return;
    }
    // Array element write.
    if (!it->second.IsArray()) {
      throw CompileError("'" + s.name + "' is not an array", s.line,
                         s.column);
    }
    AV& arr = it->second.AsArray();
    if (s.indices.size() != arr.dims.size()) {
      throw CompileError("wrong number of indices", s.line, s.column);
    }
    IV index = LinearIndex(arr, s);
    if (index.IsStatic()) {
      size_t off = CheckedOffset(index, arr, s);
      arr.elems[off] = std::move(rhs);
      return;
    }
    // Runtime index: mux every slot on an equality selector.
    for (size_t i = 0; i < arr.elems.size(); i++) {
      BV sel = IntEq(index, IV::Constant(static_cast<int64_t>(i)));
      arr.elems[i] = Mux(sel, rhs, arr.elems[i], s.line);
    }
  }

  void ExecIf(const Stmt& s) {
    V cond = Eval(*s.value);
    if (!cond.IsBool()) {
      throw CompileError("if condition must be bool", s.line, s.column);
    }
    const BV& c = cond.AsBool();
    if (c.IsStatic()) {
      const auto& arm = *c.static_value ? s.body : s.else_body;
      for (const auto& child : arm) {
        Exec(*child);
      }
      return;
    }
    // Runtime condition: run both arms against copies, then merge writes.
    std::map<std::string, V> before = env_;
    write_logs_.emplace_back();
    for (const auto& child : s.body) {
      Exec(*child);
    }
    std::set<std::string> then_writes = std::move(write_logs_.back());
    write_logs_.pop_back();
    std::map<std::string, V> then_env = std::move(env_);

    env_ = before;
    write_logs_.emplace_back();
    for (const auto& child : s.else_body) {
      Exec(*child);
    }
    std::set<std::string> else_writes = std::move(write_logs_.back());
    write_logs_.pop_back();

    std::set<std::string> written = then_writes;
    written.insert(else_writes.begin(), else_writes.end());
    for (const auto& name : written) {
      RecordWrite(name);
      env_[name] = Mux(c, then_env.at(name), env_.at(name), s.line);
    }
  }

  void ExecFor(const Stmt& s) {
    int64_t lo = EvalStaticInt(*s.lo);
    int64_t hi = EvalStaticInt(*s.hi);
    bool had_shadow = env_.count(s.name) != 0;
    V shadow;
    if (had_shadow) {
      shadow = env_.at(s.name);
    }
    for (int64_t k = lo; k <= hi; k++) {
      env_[s.name] = V(IV::Constant(k));
      for (const auto& child : s.body) {
        Exec(*child);
      }
    }
    if (had_shadow) {
      env_[s.name] = shadow;
    } else {
      env_.erase(s.name);
    }
  }

  void RecordWrite(const std::string& name) {
    for (auto& log : write_logs_) {
      log.insert(name);
    }
  }

  // ----- fixed-point rationals -----
  //
  // Assignment to a variable declared rational<W, q> *rounds* the value to
  // denominator 2^q (floor semantics) and bounds the numerator by 2^W. This
  // is zlang's realization of Ginger's primitive floating-point: without it,
  // rational widths compound across loop iterations (e.g. Floyd-Warshall's
  // m^3 chained relaxations) and exceed any fixed field. Once a value is
  // fixed-point its denominator is a compile-time constant, so subsequent
  // +/- and scalar ops cost no constraints beyond the next rounding.

  V CoerceAssign(const std::string& name, V rhs, size_t line) {
    auto dt = decl_types_.find(name);
    if (dt == decl_types_.end()) {
      return rhs;
    }
    const TypeNode& type = dt->second;
    if (type.kind != TypeNode::Kind::kRational) {
      return rhs;
    }
    if (rhs.IsArray()) {  // whole-array assignment: fix element-wise
      AV arr = rhs.AsArray();
      for (auto& elem : arr.elems) {
        RV r = ToRational(elem, line);
        elem = V(FixRational(r, type.width, type.den_width, line));
      }
      return V(std::move(arr));
    }
    RV r = ToRational(rhs, line);
    return V(FixRational(r, type.width, type.den_width, line));
  }

  static std::optional<size_t> StaticPowerOfTwo(const IV& v) {
    if (!v.IsStatic() || *v.static_value <= 0) {
      return std::nullopt;
    }
    uint64_t x = static_cast<uint64_t>(*v.static_value);
    if ((x & (x - 1)) != 0) {
      return std::nullopt;
    }
    return static_cast<size_t>(__builtin_ctzll(x));
  }

  RV FixRational(const RV& x, size_t w, size_t q, size_t line) {
    auto e = StaticPowerOfTwo(x.den);
    RV out;
    out.den = IV::Constant(int64_t{1} << q);
    if (e.has_value() && *e <= q) {
      // Exact rescale: n' = n · 2^(q-e); no constraints.
      out.num = x.num;
      out.num.lc = x.num.lc * PowerOfTwo(q - *e);
      out.num.width = x.num.width + static_cast<double>(q - *e);
      if (out.num.static_value.has_value()) {
        out.num.static_value =
            ClipStatic(static_cast<__int128>(*x.num.static_value)
                       << (q - *e));
      }
      if (out.num.width > static_cast<double>(w)) {
        throw CompileError("fixed-point value exceeds declared width", line,
                           0);
      }
      return out;
    }
    if (e.has_value()) {
      // Static power-of-two denominator, shift down by s = e - q:
      // n' = floor(n / 2^s) via bit decomposition (no division needed).
      size_t s = *e - q;
      size_t kbits = static_cast<size_t>(std::ceil(x.num.width));
      CheckWidth(static_cast<double>(kbits + 1), line);
      LC shifted = x.num.lc;
      shifted.AddConstant(PowerOfTwo(kbits));
      shifted.Compact();
      std::vector<LC> bits = builder_.Decompose(shifted, kbits + 1);
      LC high;
      F pw = F::One();
      for (size_t i = s; i <= kbits; i++) {
        high = high + bits[i] * pw;
        pw = pw.Double();
      }
      high.AddConstant(-PowerOfTwo(kbits - s));
      high.Compact();
      out.num.lc = high;
      out.num.width = std::max(1.0, x.num.width - static_cast<double>(s));
      return out;
    }
    // Dynamic denominator: full division gadget.
    // n2 = n·2^q; n' = floor(n2 / d) with n2 = n'·d + r, 0 <= r < d.
    LC n2 = x.num.lc * PowerOfTwo(q);
    auto [quot, rem] = builder_.DivFloor(n2, x.den.lc);
    // r in [0, 2^wd) and r < d.
    size_t wd = static_cast<size_t>(std::ceil(x.den.width));
    builder_.Decompose(rem, wd);
    IV r_iv;
    r_iv.lc = rem;
    r_iv.width = static_cast<double>(wd);
    BV r_less = IntLess(r_iv, x.den, line);
    builder_.AssertEqual(r_less.lc, LC(F::One()));
    // n' in [-2^w, 2^w).
    LC shifted_q = quot;
    shifted_q.AddConstant(PowerOfTwo(w));
    builder_.Decompose(shifted_q, w + 1);
    out.num.lc = quot;
    out.num.width = static_cast<double>(w);
    return out;
  }

  // ----- expressions -----

  V Eval(const Expr& e) {
    if (e.line != 0) {
      builder_.SetSourceLine(e.line);
    }
    switch (e.kind) {
      case Expr::Kind::kIntLit:
        return V(IV::Constant(e.int_value));
      case Expr::Kind::kBoolLit:
        return V(BV::Constant(e.int_value != 0));
      case Expr::Kind::kVarRef: {
        auto it = env_.find(e.name);
        if (it == env_.end()) {
          throw CompileError("undeclared identifier '" + e.name + "'", e.line,
                             e.column);
        }
        return it->second;
      }
      case Expr::Kind::kIndex:
        return EvalIndex(e);
      case Expr::Kind::kBinary:
        return EvalBinary(e);
      case Expr::Kind::kUnary:
        return EvalUnary(e);
      case Expr::Kind::kTernary: {
        V cond = Eval(*e.children[0]);
        if (!cond.IsBool()) {
          throw CompileError("ternary condition must be bool", e.line,
                             e.column);
        }
        const BV& c = cond.AsBool();
        if (c.IsStatic()) {
          return Eval(*c.static_value ? *e.children[1] : *e.children[2]);
        }
        V a = Eval(*e.children[1]);
        V b = Eval(*e.children[2]);
        return Mux(c, a, b, e.line);
      }
      case Expr::Kind::kCall:
        return EvalCall(e);
    }
    throw CompileError("internal: unknown expression kind", e.line, e.column);
  }

  int64_t EvalStaticInt(const Expr& e) {
    V v = Eval(e);
    if (!v.IsInt() || !v.AsInt().IsStatic()) {
      throw CompileError("expression must be a compile-time integer", e.line,
                         e.column);
    }
    return *v.AsInt().static_value;
  }

  V EvalCall(const Expr& e) {
    auto arg = [&](size_t i) -> V { return Eval(*e.children[i]); };
    if (e.name == "min" || e.name == "max") {
      if (e.children.size() != 2) {
        throw CompileError(e.name + " takes two arguments", e.line, e.column);
      }
      V a = arg(0), b = arg(1);
      BV a_less = Less(a, b, e.line);
      return e.name == "min" ? Mux(a_less, a, b, e.line)
                             : Mux(a_less, b, a, e.line);
    }
    if (e.name == "abs") {
      if (e.children.size() != 1) {
        throw CompileError("abs takes one argument", e.line, e.column);
      }
      V a = arg(0);
      V neg = Negate(a, e.line);
      BV is_neg = Less(a, V(IV::Constant(0)), e.line);
      return Mux(is_neg, neg, a, e.line);
    }
    if (e.name == "idiv" || e.name == "imod") {
      if (e.children.size() != 2) {
        throw CompileError(e.name + " takes two arguments", e.line, e.column);
      }
      V a = arg(0), b = arg(1);
      if (!a.IsInt() || !b.IsInt()) {
        throw CompileError(e.name + " requires integer arguments", e.line,
                           e.column);
      }
      auto [q, r] = IntDivMod(a.AsInt(), b.AsInt(), e.line);
      return e.name == "idiv" ? V(q) : V(r);
    }
    if (e.name == "isqrt") {
      if (e.children.size() != 1) {
        throw CompileError("isqrt takes one argument", e.line, e.column);
      }
      V a = arg(0);
      if (!a.IsInt()) {
        throw CompileError("isqrt requires an integer argument", e.line,
                           e.column);
      }
      return V(IntSqrt(a.AsInt(), e.line));
    }
    auto fn = functions_.find(e.name);
    if (fn != functions_.end()) {
      return CallFunction(*fn->second, e);
    }
    throw CompileError("unknown function '" + e.name + "'", e.line, e.column);
  }

  // Inlines a user function: arguments bind into a saved-and-restored copy
  // of the environment, so writes inside the function stay local.
  V CallFunction(const FunctionDecl& f, const Expr& call) {
    if (call.children.size() != f.params.size()) {
      throw CompileError("function '" + f.name + "' expects " +
                             std::to_string(f.params.size()) + " arguments",
                         call.line, call.column);
    }
    if (call_depth_ >= kMaxCallDepth) {
      throw CompileError("call depth limit exceeded (recursion?)", call.line,
                         call.column);
    }
    std::vector<V> args;
    args.reserve(f.params.size());
    for (size_t i = 0; i < f.params.size(); i++) {
      args.push_back(Eval(*call.children[i]));
    }
    std::map<std::string, V> saved_env = env_;
    auto saved_decl_types = decl_types_;
    for (size_t i = 0; i < f.params.size(); i++) {
      const auto& p = f.params[i];
      V v = args[i];
      if (p.type.kind == TypeNode::Kind::kRational && v.IsInt()) {
        v = V(RV::FromInt(v.AsInt()));
      }
      env_[p.name] = std::move(v);
      decl_types_.erase(p.name);  // param widths are advisory, not rounding
    }
    call_depth_++;
    return_value_.reset();
    for (const auto& s : f.body) {
      Exec(*s);
    }
    call_depth_--;
    if (!return_value_.has_value()) {
      throw CompileError("function '" + f.name + "' did not return",
                         call.line, call.column);
    }
    V result = std::move(*return_value_);
    return_value_.reset();
    env_ = std::move(saved_env);
    decl_types_ = std::move(saved_decl_types);
    return result;
  }

  // Runtime integer division: a = q·b + r with 0 <= r < b; requires b > 0
  // at runtime (the witness solver enforces it).
  std::pair<IV, IV> IntDivMod(const IV& a, const IV& b, size_t line) {
    if (a.IsStatic() && b.IsStatic() && *b.static_value > 0) {
      int64_t av = *a.static_value, bv = *b.static_value;
      int64_t q = av / bv, r = av % bv;
      if (r < 0) {  // floor semantics
        q -= 1;
        r += bv;
      }
      return {IV::Constant(q), IV::Constant(r)};
    }
    auto [quot, rem] = builder_.DivFloor(a.lc, b.lc);
    size_t wb = static_cast<size_t>(std::ceil(b.width));
    CheckWidth(static_cast<double>(wb), line);
    builder_.Decompose(rem, wb);
    IV r_iv;
    r_iv.lc = rem;
    r_iv.width = static_cast<double>(wb);
    BV r_less = IntLess(r_iv, b, line);
    builder_.AssertEqual(r_less.lc, LC(F::One()));
    size_t wq = static_cast<size_t>(std::ceil(a.width));
    CheckWidth(static_cast<double>(wq + 1), line);
    LC shifted = quot;
    shifted.AddConstant(PowerOfTwo(wq));
    builder_.Decompose(shifted, wq + 1);
    IV q_iv;
    q_iv.lc = quot;
    q_iv.width = static_cast<double>(wq);
    return {q_iv, r_iv};
  }

  // Integer square root: s with s^2 <= x < (s+1)^2; requires x >= 0.
  IV IntSqrt(const IV& x, size_t line) {
    if (x.IsStatic() && *x.static_value >= 0) {
      int64_t v = *x.static_value;
      int64_t s = static_cast<int64_t>(std::sqrt(static_cast<double>(v)));
      while (s > 0 && s * s > v) {
        s--;
      }
      while ((s + 1) * (s + 1) <= v) {
        s++;
      }
      return IV::Constant(s);
    }
    size_t w = static_cast<size_t>(std::ceil(x.width));
    CheckWidth(static_cast<double>(w + 2), line);
    LC s = builder_.SqrtWitness(x.lc);
    LC s_sq = builder_.Product(s, s);
    // x - s^2 in [0, 2^w).
    LC low = x.lc + s_sq * (-F::One());
    low.Compact();
    builder_.Decompose(low, w);
    // (s+1)^2 - x - 1 = s^2 + 2s - x >= 0.
    LC high = s_sq + s + s + x.lc * (-F::One());
    high.Compact();
    builder_.Decompose(high, w);
    IV out;
    out.lc = s;
    out.width = static_cast<double>(w / 2 + 1);
    return out;
  }

  V EvalIndex(const Expr& e) {
    const Expr& base = *e.children[0];
    auto it = env_.find(base.name);
    if (it == env_.end() || !it->second.IsArray()) {
      throw CompileError("'" + base.name + "' is not an array", e.line,
                         e.column);
    }
    const AV& arr = it->second.AsArray();
    if (e.children.size() - 1 != arr.dims.size()) {
      throw CompileError("wrong number of indices", e.line, e.column);
    }
    IV index = LinearIndexExprs(arr, e.children, 1, e.line);
    if (index.IsStatic()) {
      int64_t off = *index.static_value;
      if (off < 0 || static_cast<size_t>(off) >= arr.elems.size()) {
        throw CompileError("array index out of bounds", e.line, e.column);
      }
      return arr.elems[static_cast<size_t>(off)];
    }
    // Runtime read: sum of selector-masked elements.
    return SelectRuntime(arr, index, e.line);
  }

  // ----- integer ops -----

  void CheckWidth(double width, size_t line) {
    if (width > kMaxWidth) {
      throw CompileError(
          "integer width " + std::to_string(width) +
              " exceeds field capacity (" + std::to_string(kMaxWidth) + ")",
          line, 0);
    }
  }

  // log2(2^a + 2^b), the width of a sum of magnitudes.
  static double AddWidth(double a, double b) {
    double hi = std::max(a, b), lo = std::min(a, b);
    if (hi - lo > 60) {
      return hi;
    }
    return hi + std::log2(1.0 + std::exp2(lo - hi));
  }

  static std::optional<int64_t> ClipStatic(__int128 v) {
    const __int128 kLimit = static_cast<__int128>(1) << 62;
    if (v >= kLimit || v <= -kLimit) {
      return std::nullopt;
    }
    return static_cast<int64_t>(v);
  }

  IV IntAdd(const IV& a, const IV& b, size_t line, bool subtract = false) {
    IV r;
    r.lc = subtract ? a.lc + b.lc * (-F::One()) : a.lc + b.lc;
    r.lc.Compact();
    r.width = AddWidth(a.width, b.width);
    CheckWidth(r.width, line);
    if (a.IsStatic() && b.IsStatic()) {
      __int128 v = static_cast<__int128>(*a.static_value) +
                   (subtract ? -static_cast<__int128>(*b.static_value)
                             : static_cast<__int128>(*b.static_value));
      r.static_value = ClipStatic(v);
    }
    return r;
  }

  IV IntMul(const IV& a, const IV& b, size_t line) {
    IV r;
    r.width = a.width + b.width;
    CheckWidth(r.width, line);
    r.lc = builder_.Product(a.lc, b.lc);
    if (a.IsStatic() && b.IsStatic()) {
      r.static_value = ClipStatic(static_cast<__int128>(*a.static_value) *
                                  *b.static_value);
    }
    return r;
  }

  IV IntNeg(const IV& a) {
    IV r;
    r.lc = a.lc * (-F::One());
    r.width = a.width;
    if (a.IsStatic()) {
      r.static_value = -*a.static_value;
    }
    return r;
  }

  // a < b via shifted bit decomposition (O(width) constraints).
  BV IntLess(const IV& a, const IV& b, size_t line) {
    if (a.IsStatic() && b.IsStatic()) {
      return BV::Constant(*a.static_value < *b.static_value);
    }
    size_t w = static_cast<size_t>(std::ceil(AddWidth(a.width, b.width)));
    CheckWidth(static_cast<double>(w + 1), line);
    // d = a - b + 2^w is in (0, 2^{w+1}); a < b iff d < 2^w iff bit w clear.
    LC d = a.lc + b.lc * (-F::One());
    d.AddConstant(PowerOfTwo(w));
    d.Compact();
    std::vector<LC> bits = builder_.Decompose(d, w + 1);
    BV r;
    r.lc = LinearCombination<F>(F::One()) + bits[w] * (-F::One());
    r.lc.Compact();
    return r;
  }

  // `line` kept for signature uniformity with the other gadgets; IsZero is
  // width-free so nothing here can overflow-report against it.
  BV IntEq(const IV& a, const IV& b, size_t /*line*/ = 0) {
    if (a.IsStatic() && b.IsStatic()) {
      return BV::Constant(*a.static_value == *b.static_value);
    }
    LC d = a.lc + b.lc * (-F::One());
    d.Compact();
    if (d.IsConstant()) {
      return BV::Constant(d.constant().IsZero());
    }
    BV r;
    r.lc = builder_.IsZero(d);
    return r;
  }

  // Bitwise ops on nonnegative integers via bit decomposition. AND pays one
  // product per bit; OR and XOR derive from it arithmetically:
  //   a|b = a + b - (a&b),   a^b = a + b - 2(a&b).
  IV IntBitwise(TokenKind op, const IV& a, const IV& b, size_t line) {
    if (a.IsStatic() && b.IsStatic() && *a.static_value >= 0 &&
        *b.static_value >= 0) {
      int64_t av = *a.static_value, bv = *b.static_value;
      int64_t r = op == TokenKind::kAmp   ? (av & bv)
                  : op == TokenKind::kPipe ? (av | bv)
                                           : (av ^ bv);
      return IV::Constant(r);
    }
    size_t w = static_cast<size_t>(
        std::ceil(std::max(a.width, b.width)));
    CheckWidth(static_cast<double>(w), line);
    std::vector<LC> abits = builder_.Decompose(a.lc, w);
    std::vector<LC> bbits = builder_.Decompose(b.lc, w);
    LC and_acc;
    F pow = F::One();
    for (size_t i = 0; i < w; i++) {
      and_acc = and_acc + builder_.Product(abits[i], bbits[i]) * pow;
      pow = pow.Double();
    }
    and_acc.Compact();
    IV r;
    r.width = static_cast<double>(w);
    switch (op) {
      case TokenKind::kAmp:
        r.lc = and_acc;
        break;
      case TokenKind::kPipe:
        r.lc = a.lc + b.lc + and_acc * (-F::One());
        break;
      default:  // kCaret
        r.lc = a.lc + b.lc + and_acc * (-F::FromUint(2));
        break;
    }
    r.lc.Compact();
    return r;
  }

  IV IntShl(const IV& a, size_t k, size_t line) {
    IV r;
    r.lc = a.lc * PowerOfTwo(k);
    r.width = a.width + static_cast<double>(k);
    CheckWidth(r.width, line);
    if (a.IsStatic()) {
      r.static_value = ClipStatic(static_cast<__int128>(*a.static_value)
                                  << k);
    }
    return r;
  }

  // Arithmetic (floor) right shift, valid for negative values too.
  IV IntShr(const IV& a, size_t k, size_t line) {
    if (a.IsStatic()) {
      return IV::Constant(*a.static_value >> k);  // arithmetic shift
    }
    size_t kbits = static_cast<size_t>(std::ceil(a.width));
    if (k >= kbits) {
      // Result is 0 for nonnegative, -1 for negative: floor(a / 2^k).
      kbits = k;  // decompose wide enough to capture the sign
    }
    CheckWidth(static_cast<double>(kbits + 1), line);
    LC shifted = a.lc;
    shifted.AddConstant(PowerOfTwo(kbits));
    std::vector<LC> bits = builder_.Decompose(shifted, kbits + 1);
    LC high;
    F pow = F::One();
    for (size_t i = k; i <= kbits; i++) {
      high = high + bits[i] * pow;
      pow = pow.Double();
    }
    high.AddConstant(-PowerOfTwo(kbits - k));
    high.Compact();
    IV r;
    r.lc = high;
    r.width = std::max(1.0, a.width - static_cast<double>(k));
    return r;
  }

  static F PowerOfTwo(size_t w) {
    F r = F::One();
    for (size_t i = 0; i < w; i++) {
      r = r.Double();
    }
    return r;
  }

  // ----- bool ops -----

  BV BoolNot(const BV& a) {
    BV r;
    r.lc = LinearCombination<F>(F::One()) + a.lc * (-F::One());
    r.lc.Compact();
    if (a.IsStatic()) {
      r.static_value = !*a.static_value;
    }
    return r;
  }

  BV BoolAnd(const BV& a, const BV& b) {
    if (a.IsStatic()) {
      return *a.static_value ? b : BV::Constant(false);
    }
    if (b.IsStatic()) {
      return *b.static_value ? a : BV::Constant(false);
    }
    BV r;
    r.lc = builder_.Product(a.lc, b.lc);
    return r;
  }

  BV BoolOr(const BV& a, const BV& b) {
    if (a.IsStatic()) {
      return *a.static_value ? BV::Constant(true) : b;
    }
    if (b.IsStatic()) {
      return *b.static_value ? BV::Constant(true) : a;
    }
    BV r;
    LC prod = builder_.Product(a.lc, b.lc);
    r.lc = a.lc + b.lc + prod * (-F::One());
    r.lc.Compact();
    return r;
  }

  // ----- rational ops -----

  RV ToRational(const V& v, size_t line) const {
    if (v.IsRational()) {
      return v.AsRational();
    }
    if (v.IsInt()) {
      return RV::FromInt(v.AsInt());
    }
    throw CompileError("expected a numeric value", line, 0);
  }

  RV RatAdd(const RV& a, const RV& b, size_t line, bool subtract = false) {
    RV r;
    IV n1d2 = IntMul(a.num, b.den, line);
    IV n2d1 = IntMul(b.num, a.den, line);
    r.num = IntAdd(n1d2, n2d1, line, subtract);
    r.den = IntMul(a.den, b.den, line);
    return r;
  }

  RV RatMul(const RV& a, const RV& b, size_t line) {
    RV r;
    r.num = IntMul(a.num, b.num, line);
    r.den = IntMul(a.den, b.den, line);
    return r;
  }

  BV RatLess(const RV& a, const RV& b, size_t line) {
    // n1/d1 < n2/d2  <=>  n1·d2 < n2·d1 (denominators positive).
    return IntLess(IntMul(a.num, b.den, line), IntMul(b.num, a.den, line),
                   line);
  }

  BV RatEq(const RV& a, const RV& b, size_t line) {
    return IntEq(IntMul(a.num, b.den, line), IntMul(b.num, a.den, line),
                 line);
  }

  // ----- generic dispatch -----

  BV Less(const V& a, const V& b, size_t line) {
    if (a.IsInt() && b.IsInt()) {
      return IntLess(a.AsInt(), b.AsInt(), line);
    }
    return RatLess(ToRational(a, line), ToRational(b, line), line);
  }

  V Negate(const V& a, size_t line) {
    if (a.IsInt()) {
      return V(IntNeg(a.AsInt()));
    }
    if (a.IsRational()) {
      RV r = a.AsRational();
      r.num = IntNeg(r.num);
      return V(r);
    }
    throw CompileError("cannot negate this type", line, 0);
  }

  V Mux(const BV& c, const V& a, const V& b, size_t line) {
    if (c.IsStatic()) {
      return *c.static_value ? a : b;
    }
    if (a.IsArray() || b.IsArray()) {
      if (!a.IsArray() || !b.IsArray() ||
          a.AsArray().dims != b.AsArray().dims) {
        throw CompileError("mux over mismatched arrays", line, 0);
      }
      AV out;
      out.dims = a.AsArray().dims;
      out.elems.reserve(a.AsArray().elems.size());
      for (size_t i = 0; i < a.AsArray().elems.size(); i++) {
        out.elems.push_back(
            Mux(c, a.AsArray().elems[i], b.AsArray().elems[i], line));
      }
      return V(std::move(out));
    }
    if (a.IsBool() && b.IsBool()) {
      BV r;
      r.lc = MuxLc(c.lc, a.AsBool().lc, b.AsBool().lc);
      return V(r);
    }
    if (a.IsInt() && b.IsInt()) {
      IV r;
      r.lc = MuxLc(c.lc, a.AsInt().lc, b.AsInt().lc);
      r.width = std::max(a.AsInt().width, b.AsInt().width);
      return V(r);
    }
    if ((a.IsRational() || a.IsInt()) && (b.IsRational() || b.IsInt())) {
      RV ra = ToRational(a, line), rb = ToRational(b, line);
      RV r;
      r.num.lc = MuxLc(c.lc, ra.num.lc, rb.num.lc);
      r.num.width = std::max(ra.num.width, rb.num.width);
      r.den.lc = MuxLc(c.lc, ra.den.lc, rb.den.lc);
      r.den.width = std::max(ra.den.width, rb.den.width);
      return V(r);
    }
    throw CompileError("mux over mismatched types", line, 0);
  }

  // b + c·(a - b); free when the arms agree.
  LC MuxLc(const LC& c, const LC& a, const LC& b) {
    LC diff = a + b * (-F::One());
    diff.Compact();
    if (diff.IsConstant() && diff.constant().IsZero()) {
      return b;
    }
    LC r = b + builder_.Product(c, diff);
    r.Compact();
    return r;
  }

  V EvalBinary(const Expr& e) {
    // Short-circuitable bool ops still evaluate both sides (no side effects
    // in expressions), so plain dispatch is fine.
    V a = Eval(*e.children[0]);
    V b = Eval(*e.children[1]);
    switch (e.op) {
      case TokenKind::kPlus:
      case TokenKind::kMinus: {
        bool sub = e.op == TokenKind::kMinus;
        if (a.IsInt() && b.IsInt()) {
          return V(IntAdd(a.AsInt(), b.AsInt(), e.line, sub));
        }
        return V(RatAdd(ToRational(a, e.line), ToRational(b, e.line), e.line,
                        sub));
      }
      case TokenKind::kStar:
        if (a.IsInt() && b.IsInt()) {
          return V(IntMul(a.AsInt(), b.AsInt(), e.line));
        }
        return V(RatMul(ToRational(a, e.line), ToRational(b, e.line), e.line));
      case TokenKind::kSlash:
        return EvalDivide(a, b, e);
      case TokenKind::kPercent: {
        if (!a.IsInt() || !b.IsInt() || !a.AsInt().IsStatic() ||
            !b.AsInt().IsStatic()) {
          throw CompileError("'%' requires compile-time integers", e.line,
                             e.column);
        }
        return V(IV::Constant(*a.AsInt().static_value %
                              *b.AsInt().static_value));
      }
      case TokenKind::kLess:
        return V(Less(a, b, e.line));
      case TokenKind::kGreater:
        return V(Less(b, a, e.line));
      case TokenKind::kLessEq:
        return V(BoolNot(Less(b, a, e.line)));
      case TokenKind::kGreaterEq:
        return V(BoolNot(Less(a, b, e.line)));
      case TokenKind::kEqEq:
      case TokenKind::kNotEq: {
        BV eq = EvalEq(a, b, e.line);
        return V(e.op == TokenKind::kEqEq ? eq : BoolNot(eq));
      }
      case TokenKind::kAndAnd:
        RequireBool(a, b, e);
        return V(BoolAnd(a.AsBool(), b.AsBool()));
      case TokenKind::kOrOr:
        RequireBool(a, b, e);
        return V(BoolOr(a.AsBool(), b.AsBool()));
      case TokenKind::kAmp:
      case TokenKind::kPipe:
      case TokenKind::kCaret:
        if (!a.IsInt() || !b.IsInt()) {
          throw CompileError("bitwise operator requires integers", e.line,
                             e.column);
        }
        return V(IntBitwise(e.op, a.AsInt(), b.AsInt(), e.line));
      case TokenKind::kShl:
      case TokenKind::kShr: {
        if (!a.IsInt() || !b.IsInt() || !b.AsInt().IsStatic() ||
            *b.AsInt().static_value < 0) {
          throw CompileError(
              "shift amount must be a nonnegative compile-time integer",
              e.line, e.column);
        }
        size_t k = static_cast<size_t>(*b.AsInt().static_value);
        return V(e.op == TokenKind::kShl ? IntShl(a.AsInt(), k, e.line)
                                         : IntShr(a.AsInt(), k, e.line));
      }
      default:
        throw CompileError("internal: unknown binary operator", e.line,
                           e.column);
    }
  }

  BV EvalEq(const V& a, const V& b, size_t line) {
    if (a.IsBool() && b.IsBool()) {
      // 1 - a - b + 2ab.
      const BV& x = a.AsBool();
      const BV& y = b.AsBool();
      if (x.IsStatic() && y.IsStatic()) {
        return BV::Constant(*x.static_value == *y.static_value);
      }
      BV r;
      LC prod = builder_.Product(x.lc, y.lc);
      r.lc = LinearCombination<F>(F::One()) + x.lc * (-F::One()) +
             y.lc * (-F::One()) + prod + prod;
      r.lc.Compact();
      return r;
    }
    if (a.IsInt() && b.IsInt()) {
      return IntEq(a.AsInt(), b.AsInt(), line);
    }
    return RatEq(ToRational(a, line), ToRational(b, line), line);
  }

  V EvalDivide(const V& a, const V& b, const Expr& e) {
    // Integer division: compile-time only. Rational division: by a positive
    // compile-time integer (scales the denominator; positivity preserved).
    if (a.IsInt() && b.IsInt() && a.AsInt().IsStatic() &&
        b.AsInt().IsStatic()) {
      if (*b.AsInt().static_value == 0) {
        throw CompileError("division by zero", e.line, e.column);
      }
      return V(IV::Constant(*a.AsInt().static_value /
                            *b.AsInt().static_value));
    }
    if (b.IsInt() && b.AsInt().IsStatic()) {
      int64_t k = *b.AsInt().static_value;
      if (k <= 0) {
        throw CompileError("rational division requires a positive constant",
                           e.line, e.column);
      }
      RV r = ToRational(a, e.line);
      r.den = IntMul(r.den, IV::Constant(k), e.line);
      return V(r);
    }
    throw CompileError(
        "unsupported division (only by compile-time constants)", e.line,
        e.column);
  }

  void RequireBool(const V& a, const V& b, const Expr& e) {
    if (!a.IsBool() || !b.IsBool()) {
      throw CompileError("logical operator requires bool operands", e.line,
                         e.column);
    }
  }

  V EvalUnary(const Expr& e) {
    V a = Eval(*e.children[0]);
    if (e.op == TokenKind::kMinus) {
      return Negate(a, e.line);
    }
    if (e.op == TokenKind::kNot) {
      if (!a.IsBool()) {
        throw CompileError("'!' requires a bool", e.line, e.column);
      }
      return V(BoolNot(a.AsBool()));
    }
    throw CompileError("internal: unknown unary operator", e.line, e.column);
  }

  // ----- array helpers -----

  IV LinearIndexExprs(const AV& arr,
                      const std::vector<ExprPtr>& exprs, size_t first,
                      size_t line) {
    IV idx = IV::Constant(0);
    for (size_t k = 0; k < arr.dims.size(); k++) {
      V v = Eval(*exprs[first + k]);
      if (!v.IsInt()) {
        throw CompileError("array index must be an integer", line, 0);
      }
      idx = IntMul(idx, IV::Constant(static_cast<int64_t>(arr.dims[k])),
                   line);
      idx = IntAdd(idx, v.AsInt(), line);
    }
    return idx;
  }

  IV LinearIndex(const AV& arr, const Stmt& s) {
    IV idx = IV::Constant(0);
    for (size_t k = 0; k < arr.dims.size(); k++) {
      V v = Eval(*s.indices[k]);
      if (!v.IsInt()) {
        throw CompileError("array index must be an integer", s.line,
                           s.column);
      }
      idx = IntMul(idx, IV::Constant(static_cast<int64_t>(arr.dims[k])),
                   s.line);
      idx = IntAdd(idx, v.AsInt(), s.line);
    }
    return idx;
  }

  size_t CheckedOffset(const IV& index, const AV& arr, const Stmt& s) {
    int64_t off = *index.static_value;
    if (off < 0 || static_cast<size_t>(off) >= arr.elems.size()) {
      throw CompileError("array index out of bounds", s.line, s.column);
    }
    return static_cast<size_t>(off);
  }

  V SelectRuntime(const AV& arr, const IV& index, size_t line) {
    // result = sum_i (index == i) · elem_i, per scalar component.
    std::vector<LC> sels;
    sels.reserve(arr.elems.size());
    for (size_t i = 0; i < arr.elems.size(); i++) {
      sels.push_back(
          IntEq(index, IV::Constant(static_cast<int64_t>(i)), line).lc);
    }
    const V& first = arr.elems[0];
    if (first.IsInt() || first.IsBool()) {
      LC acc;
      double width = 1;
      for (size_t i = 0; i < arr.elems.size(); i++) {
        const LC& elem_lc =
            first.IsInt() ? arr.elems[i].AsInt().lc : arr.elems[i].AsBool().lc;
        acc = acc + builder_.Product(sels[i], elem_lc);
        if (first.IsInt()) {
          width = std::max(width, arr.elems[i].AsInt().width);
        }
      }
      acc.Compact();
      if (first.IsBool()) {
        BV r;
        r.lc = acc;
        return V(r);
      }
      IV r;
      r.lc = acc;
      r.width = width;
      return V(r);
    }
    if (first.IsRational()) {
      LC num_acc, den_acc;
      double nw = 1, dw = 1;
      for (size_t i = 0; i < arr.elems.size(); i++) {
        const RV& rv = arr.elems[i].AsRational();
        num_acc = num_acc + builder_.Product(sels[i], rv.num.lc);
        den_acc = den_acc + builder_.Product(sels[i], rv.den.lc);
        nw = std::max(nw, rv.num.width);
        dw = std::max(dw, rv.den.width);
      }
      num_acc.Compact();
      den_acc.Compact();
      RV r;
      r.num.lc = num_acc;
      r.num.width = nw;
      r.den.lc = den_acc;
      r.den.width = dw;
      return V(r);
    }
    throw CompileError("runtime indexing of nested arrays is unsupported",
                       line, 0);
  }

  // ----- outputs -----

  struct OutputBinding {
    const Declaration* decl = nullptr;
    TypeNode type;
    std::vector<uint32_t> vars;
  };

  void BindOutputs() {
    for (const auto& binding : output_bindings_) {
      const V& v = env_.at(binding.decl->name);
      std::vector<LC> scalars;
      CollectScalars(v, binding.type, binding.decl->line, &scalars);
      if (scalars.size() != binding.vars.size()) {
        throw CompileError(
            "output '" + binding.decl->name + "' shape mismatch",
            binding.decl->line, binding.decl->column);
      }
      for (size_t i = 0; i < scalars.size(); i++) {
        builder_.BindOutput(binding.vars[i], scalars[i]);
      }
    }
  }

  void CollectScalars(const V& v, const TypeNode& type, size_t line,
                      std::vector<LC>* out) {
    if (v.IsArray()) {
      for (const auto& elem : v.AsArray().elems) {
        CollectScalars(elem, type, line, out);
      }
      return;
    }
    switch (type.kind) {
      case TypeNode::Kind::kInt:
        if (!v.IsInt()) {
          throw CompileError("output type mismatch (expected int)", line, 0);
        }
        out->push_back(v.AsInt().lc);
        break;
      case TypeNode::Kind::kBool:
        if (!v.IsBool()) {
          throw CompileError("output type mismatch (expected bool)", line, 0);
        }
        out->push_back(v.AsBool().lc);
        break;
      case TypeNode::Kind::kRational: {
        RV r = ToRational(v, line);
        out->push_back(r.num.lc);
        out->push_back(r.den.lc);
        break;
      }
    }
  }

  static constexpr size_t kMaxCallDepth = 64;

  const ProgramAst* ast_;
  CircuitBuilder<F> builder_;
  std::map<std::string, V> env_;
  std::map<std::string, TypeNode> decl_types_;
  std::map<std::string, const FunctionDecl*> functions_;
  size_t call_depth_ = 0;
  std::optional<V> return_value_;
  std::vector<std::set<std::string>> write_logs_;
  std::vector<IoSlotSpec> input_slots_;
  std::vector<IoSlotSpec> output_slots_;
  std::vector<OutputBinding> output_bindings_;
};

}  // namespace zaatar

#endif  // SRC_COMPILER_EVALUATOR_H_
