// CircuitBuilder: accumulates Ginger constraints plus witness-solver ops as
// the evaluator walks the program, then finalizes variable numbering.
//
// During construction, variables carry *provisional* indices tagged by role
// (unbound / input / output) in the top bits; Finalize() renumbers them into
// the layout the constraint systems expect (Z first, then X, then Y) and
// rewrites every constraint and solver op.
//
// The gadget vocabulary matches the paper's §2.2/§5.4 discussion:
//   Product       degree-2 constraint (the compiler's workhorse)
//   IsZero        the "X != Z" trick: 0 = (X-Z)·M - 1, via an aux inverse
//   Decompose     bit decomposition; order comparisons cost O(width)
//                 constraints ("O(log |F|) constraints for inequality
//                 comparisons")
//   AssertEqual   a linear constraint

#ifndef SRC_COMPILER_BUILDER_H_
#define SRC_COMPILER_BUILDER_H_

#include <cassert>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/compiler/lexer.h"
#include "src/compiler/solver.h"
#include "src/constraints/ginger.h"

namespace zaatar {

template <typename F>
class CircuitBuilder {
 public:
  using LC = LinearCombination<F>;

  static constexpr uint32_t kTagShift = 30;
  static constexpr uint32_t kUnboundTag = 0u << kTagShift;
  static constexpr uint32_t kInputTag = 1u << kTagShift;
  static constexpr uint32_t kOutputTag = 2u << kTagShift;
  static constexpr uint32_t kOrdinalMask = (1u << kTagShift) - 1;

  uint32_t NewInput() { return kInputTag | num_inputs_++; }
  uint32_t NewOutput() { return kOutputTag | num_outputs_++; }

  // Source-location plumbing: the evaluator announces the zlang line it is
  // currently lowering; every constraint emitted until the next call is
  // attributed to that line (0 = unknown). zaatar-lint findings use the
  // attribution to point at program text instead of bare constraint indices.
  void SetSourceLine(size_t line) {
    current_line_ = static_cast<uint32_t>(line);
  }

  size_t num_inputs() const { return num_inputs_; }
  size_t num_outputs() const { return num_outputs_; }
  size_t num_constraints() const { return constraints_.size(); }

  // ----- gadgets -----

  // Returns an LC referring to a single fresh variable equal to `lc`.
  // No-op when lc is already a bare variable.
  LC Materialize(const LC& lc) {
    if (lc.terms().size() == 1 && lc.constant().IsZero() &&
        lc.terms()[0].second.IsOne()) {
      return lc;
    }
    uint32_t v = NewUnbound();
    // v - lc = 0
    GingerConstraint<F> c;
    c.linear = lc * (-F::One());
    c.linear.AddTerm(v, F::One());
    c.linear.Compact();
    PushConstraint(std::move(c));
    PushAffine(v, lc);
    return LC::Variable(v);
  }

  // Product of two linear combinations; returns the result as a fresh
  // variable (or folds it when either side is constant).
  LC Product(const LC& a, const LC& b) {
    if (a.IsConstant()) {
      return b * a.constant();
    }
    if (b.IsConstant()) {
      return a * b.constant();
    }
    // Keep the degree-2 cross expansion small; Ginger constraints allow many
    // additive terms, but large cross products inflate K and K2 needlessly.
    LC la = a.terms().size() <= 2 ? a : Materialize(a);
    LC lb = b.terms().size() <= 2 ? b : Materialize(b);

    uint32_t v = NewUnbound();
    GingerConstraint<F> c;
    // la·lb - v = 0, expanded.
    c.linear = lb * la.constant() + la * lb.constant();
    c.linear.AddConstant(-(la.constant() * lb.constant()));  // counted twice
    c.linear.AddTerm(v, -F::One());
    c.linear.Compact();
    for (const auto& [va, ca] : la.terms()) {
      for (const auto& [vb, cb] : lb.terms()) {
        c.quad.push_back({va, vb, ca * cb});
      }
    }
    PushConstraint(std::move(c));

    SolverOp<F> op;
    op.kind = SolverOp<F>::Kind::kProduct;
    op.dst = v;
    op.a = la;
    op.b = lb;
    op.c0 = F::Zero();
    op.c1 = F::One();
    solver_.push_back(std::move(op));
    return LC::Variable(v);
  }

  // Boolean (0/1) variable that is 1 iff value == 0.
  LC IsZero(const LC& value) {
    LC v = Materialize(value);
    uint32_t m = NewUnbound();
    uint32_t b = NewUnbound();
    uint32_t vv = v.terms()[0].first;
    // v·m + b - 1 = 0
    {
      GingerConstraint<F> c;
      c.quad.push_back({vv, m, F::One()});
      c.linear.AddTerm(b, F::One());
      c.linear.AddConstant(-F::One());
      PushConstraint(std::move(c));
    }
    // v·b = 0
    {
      GingerConstraint<F> c;
      c.quad.push_back({vv, b, F::One()});
      PushConstraint(std::move(c));
    }
    {
      SolverOp<F> op;
      op.kind = SolverOp<F>::Kind::kInvOrZero;
      op.dst = m;
      op.a = v;
      solver_.push_back(std::move(op));
    }
    {
      SolverOp<F> op;  // b = 1 - v·m
      op.kind = SolverOp<F>::Kind::kProduct;
      op.dst = b;
      op.a = v;
      op.b = LC::Variable(m);
      op.c0 = F::One();
      op.c1 = -F::One();
      solver_.push_back(std::move(op));
    }
    return LC::Variable(b);
  }

  // Decomposes `value` (whose canonical representation is known to fit in
  // `width` bits) into bits, least significant first. Each bit costs one
  // constraint; one linear constraint ties them to the value.
  std::vector<LC> Decompose(const LC& value, size_t width) {
    assert(width + 2 < F::kModulusBits &&
           "bit width too large for the field");
    std::vector<uint32_t> bits(width);
    SolverOp<F> op;
    op.kind = SolverOp<F>::Kind::kBits;
    op.a = value;
    GingerConstraint<F> sum;  // sum_i 2^i b_i - value = 0
    sum.linear = value * (-F::One());
    F pow = F::One();
    std::vector<LC> out;
    out.reserve(width);
    for (size_t i = 0; i < width; i++) {
      bits[i] = NewUnbound();
      op.bit_dsts.push_back(bits[i]);
      // b·b - b = 0
      GingerConstraint<F> bc;
      bc.quad.push_back({bits[i], bits[i], F::One()});
      bc.linear.AddTerm(bits[i], -F::One());
      PushConstraint(std::move(bc));
      sum.linear.AddTerm(bits[i], pow);
      pow = pow.Double();
      out.push_back(LC::Variable(bits[i]));
    }
    sum.linear.Compact();
    PushConstraint(std::move(sum));
    solver_.push_back(std::move(op));
    return out;
  }

  // Floor division: fresh (quotient, remainder) variables with the single
  // constraint dividend = q·divisor + r. The *caller* must add the range
  // constraints (r in [0, divisor), q in range) that make the decomposition
  // unique — see Evaluator::FixRationalDynamic.
  std::pair<LC, LC> DivFloor(const LC& dividend, const LC& divisor) {
    uint32_t q = NewUnbound();
    uint32_t r = NewUnbound();
    {
      SolverOp<F> op;
      op.kind = SolverOp<F>::Kind::kDivFloor;
      op.dst = q;
      op.dst2 = r;
      op.a = dividend;
      op.b = divisor;
      solver_.push_back(std::move(op));
    }
    // dividend - q·divisor - r = 0.
    LC d = divisor.terms().empty() ? divisor : Materialize(divisor);
    GingerConstraint<F> c;
    c.linear = dividend;
    c.linear.AddTerm(r, -F::One());
    if (d.IsConstant()) {
      c.linear.AddTerm(q, -d.constant());
    } else {
      c.quad.push_back({q, d.terms()[0].first, -F::One()});
    }
    c.linear.Compact();
    PushConstraint(std::move(c));
    return {LC::Variable(q), LC::Variable(r)};
  }

  // Fresh variable carrying floor(sqrt(value)) — the *caller* must add the
  // range constraints (s^2 <= value < (s+1)^2) that pin it down.
  LC SqrtWitness(const LC& value) {
    uint32_t s = NewUnbound();
    SolverOp<F> op;
    op.kind = SolverOp<F>::Kind::kSqrt;
    op.dst = s;
    op.a = value;
    solver_.push_back(std::move(op));
    return LC::Variable(s);
  }

  // Linear constraint a = b.
  void AssertEqual(const LC& a, const LC& b) {
    GingerConstraint<F> c;
    c.linear = a + b * (-F::One());
    c.linear.Compact();
    if (c.linear.IsConstant()) {
      if (!c.linear.constant().IsZero()) {
        throw CompileError("constraint is unsatisfiable for all inputs", 0, 0);
      }
      return;
    }
    PushConstraint(std::move(c));
  }

  // Pins an output variable to a computed value: one linear constraint plus
  // the solver op that produces the output.
  void BindOutput(uint32_t output_var, const LC& value) {
    GingerConstraint<F> c;
    c.linear = value * (-F::One());
    c.linear.AddTerm(output_var, F::One());
    c.linear.Compact();
    PushConstraint(std::move(c));
    PushAffine(output_var, value);
  }

  // ----- finalization -----

  struct Result {
    GingerSystem<F> system;
    std::vector<SolverOp<F>> solver;
  };

  Result Finalize() {
    const uint32_t n_unbound = num_unbound_;
    const uint32_t n_inputs = num_inputs_;
    auto remap = [n_unbound, n_inputs](uint32_t v) -> uint32_t {
      uint32_t tag = v & ~kOrdinalMask;
      uint32_t ord = v & kOrdinalMask;
      switch (tag) {
        case kUnboundTag: return ord;
        case kInputTag: return n_unbound + ord;
        default: return n_unbound + n_inputs + ord;  // kOutputTag
      }
    };

    Result r;
    r.system.layout.num_unbound = num_unbound_;
    r.system.layout.num_inputs = num_inputs_;
    r.system.layout.num_outputs = num_outputs_;
    r.system.constraints = std::move(constraints_);
    r.system.source_lines = std::move(lines_);
    for (auto& c : r.system.constraints) {
      c.linear.RemapVariables(remap);
      for (auto& q : c.quad) {
        q.a = remap(q.a);
        q.b = remap(q.b);
      }
    }
    r.solver = std::move(solver_);
    for (auto& op : r.solver) {
      op.dst = remap(op.dst);
      op.a.RemapVariables(remap);
      op.b.RemapVariables(remap);
      for (auto& b : op.bit_dsts) {
        b = remap(b);
      }
    }
    return r;
  }

 private:
  uint32_t NewUnbound() { return kUnboundTag | num_unbound_++; }

  void PushConstraint(GingerConstraint<F>&& c) {
    constraints_.push_back(std::move(c));
    lines_.push_back(current_line_);
  }

  void PushAffine(uint32_t dst, const LC& lc) {
    SolverOp<F> op;
    op.kind = SolverOp<F>::Kind::kAffine;
    op.dst = dst;
    op.a = lc;
    solver_.push_back(std::move(op));
  }

  uint32_t num_unbound_ = 0;
  uint32_t num_inputs_ = 0;
  uint32_t num_outputs_ = 0;
  uint32_t current_line_ = 0;
  std::vector<GingerConstraint<F>> constraints_;
  std::vector<uint32_t> lines_;
  std::vector<SolverOp<F>> solver_;
};

}  // namespace zaatar

#endif  // SRC_COMPILER_BUILDER_H_
