// The witness solver: a straight-line program, emitted alongside the
// constraints, that computes every unbound variable (and output) from the
// inputs. This is what the prover runs in the "solve constraints" phase of
// Figure 5 — constraint systems are not executable, so each gadget records
// how to produce its auxiliary values.

#ifndef SRC_COMPILER_SOLVER_H_
#define SRC_COMPILER_SOLVER_H_

#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "src/constraints/linear_combination.h"

namespace zaatar {

template <typename F>
struct SolverOp {
  enum class Kind {
    kAffine,     // dst = a(w)
    kProduct,    // dst = c0 + c1 * a(w) * b(w)
    kInvOrZero,  // dst = a(w) == 0 ? 0 : a(w)^{-1}
    kBits,       // bit_dsts[i] = i-th bit of a(w), canonical; value must fit
    kDivFloor,   // dst = floor(a(w) / b(w)) (a signed, b positive < 2^63);
                 // dst2 = a(w) - dst*b(w), the remainder in [0, b)
    kSqrt,       // dst = floor(sqrt(a(w))), a nonnegative < 2^126
  };

  Kind kind = Kind::kAffine;
  uint32_t dst = 0;
  uint32_t dst2 = 0;
  LinearCombination<F> a;
  LinearCombination<F> b;
  F c0 = F::Zero();
  F c1 = F::Zero();
  std::vector<uint32_t> bit_dsts;
};

// Interprets a field element as a signed integer magnitude: returns true and
// the magnitude if the canonical value is <= p/2, else the magnitude of p-v.
template <typename F>
bool SignedMagnitude(const F& v, typename F::Repr* magnitude) {
  typename F::Repr c = v.ToCanonical();
  typename F::Repr half = F::kModulus;
  half.Shr1InPlace();
  if (c > half) {
    typename F::Repr neg = F::kModulus;
    neg.SubInPlace(c);
    *magnitude = neg;
    return false;  // negative
  }
  *magnitude = c;
  return true;
}

// Executes the ops in order against `values` (inputs pre-filled by the
// caller; every other referenced slot is written before it is read, by
// construction). Throws std::runtime_error if a kBits value exceeds its
// declared width — that indicates a width-tracking bug, not a user error.
template <typename F>
void RunSolver(const std::vector<SolverOp<F>>& ops, std::vector<F>* values) {
  for (const auto& op : ops) {
    switch (op.kind) {
      case SolverOp<F>::Kind::kAffine:
        (*values)[op.dst] = op.a.Evaluate(*values);
        break;
      case SolverOp<F>::Kind::kProduct:
        (*values)[op.dst] =
            op.c0 + op.c1 * op.a.Evaluate(*values) * op.b.Evaluate(*values);
        break;
      case SolverOp<F>::Kind::kInvOrZero: {
        F v = op.a.Evaluate(*values);
        (*values)[op.dst] = v.IsZero() ? F::Zero() : v.Inverse();
        break;
      }
      case SolverOp<F>::Kind::kBits: {
        typename F::Repr canonical = op.a.Evaluate(*values).ToCanonical();
        if (canonical.BitLength() > op.bit_dsts.size()) {
          throw std::runtime_error(
              "witness solver: value exceeds its tracked bit width");
        }
        for (size_t i = 0; i < op.bit_dsts.size(); i++) {
          (*values)[op.bit_dsts[i]] =
              canonical.Bit(i) ? F::One() : F::Zero();
        }
        break;
      }
      case SolverOp<F>::Kind::kSqrt: {
        typename F::Repr mag;
        if (!SignedMagnitude(op.a.Evaluate(*values), &mag) ||
            mag.BitLength() > 126) {
          throw std::runtime_error(
              "witness solver: sqrt requires a nonnegative value < 2^126");
        }
        // Initial estimate from the top 64 bits, then integer Newton.
        size_t bits = mag.BitLength();
        uint64_t approx_shift = bits > 62 ? bits - 62 : 0;
        if (approx_shift % 2 == 1) {
          approx_shift++;
        }
        typename F::Repr top = mag;
        for (size_t i = 0; i < approx_shift; i++) {
          top.Shr1InPlace();
        }
        auto to128 = [](const typename F::Repr& r) -> __uint128_t {
          __uint128_t v = r.limbs[0];
          if constexpr (F::kLimbs > 1) {
            v |= static_cast<__uint128_t>(r.limbs[1]) << 64;
          }
          return v;
        };
        uint64_t root = static_cast<uint64_t>(
            std::sqrt(static_cast<double>(to128(top))));
        __uint128_t s =
            static_cast<__uint128_t>(root) << (approx_shift / 2);
        // Newton correction in 128-bit space (values < 2^126 fit).
        __uint128_t x = to128(mag);
        for (int iter = 0; iter < 64 && s != 0; iter++) {
          __uint128_t next = (s + x / s) / 2;
          if (next >= s) {
            break;
          }
          s = next;
        }
        while ((s + 1) * (s + 1) <= x) {
          s++;
        }
        while (s * s > x) {
          s--;
        }
        typename F::Repr out;
        out.limbs[0] = static_cast<uint64_t>(s);
        if constexpr (F::kLimbs > 1) {
          out.limbs[1] = static_cast<uint64_t>(s >> 64);
        }
        (*values)[op.dst] = F::FromCanonical(out);
        break;
      }
      case SolverOp<F>::Kind::kDivFloor: {
        typename F::Repr div_mag;
        F divisor = op.b.Evaluate(*values);
        if (!SignedMagnitude(divisor, &div_mag) || div_mag.IsZero() ||
            div_mag.BitLength() > 63) {
          throw std::runtime_error(
              "witness solver: divisor must be positive and < 2^63");
        }
        uint64_t d = div_mag.limbs[0];
        typename F::Repr num_mag;
        bool nonneg = SignedMagnitude(op.a.Evaluate(*values), &num_mag);
        typename F::Repr q = num_mag;
        uint64_t r = q.DivModU64InPlace(d);
        if (nonneg) {
          (*values)[op.dst] = F::FromCanonical(q);
          (*values)[op.dst2] = F::FromUint(r);
        } else if (r == 0) {
          (*values)[op.dst] = -F::FromCanonical(q);
          (*values)[op.dst2] = F::Zero();
        } else {
          // floor(-x/d) = -(x/d) - 1 when d does not divide x.
          (*values)[op.dst] =
              -(F::FromCanonical(q) + F::One());
          (*values)[op.dst2] = F::FromUint(d - r);
        }
        break;
      }
    }
  }
}

}  // namespace zaatar

#endif  // SRC_COMPILER_SOLVER_H_
