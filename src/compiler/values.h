// Typed symbolic values manipulated by the evaluator.
//
// Integers are field elements with a tracked magnitude bound: |v| < 2^width.
// Widths grow through arithmetic (add: +1 bit, mul: sum) and gate the
// comparison gadgets; exceeding the field capacity is a compile error (the
// paper's compiler has the same bounded-width model). A value known at
// compile time additionally carries `static_value`, which is what loop
// bounds and array indices require.
//
// Rationals follow Ginger's primitive floating-point representation: a pair
// (numerator, denominator) of integers with the denominator positive by
// construction (inputs are declared positive; +, -, *, and division by a
// positive constant preserve positivity). Comparisons cross-multiply.

#ifndef SRC_COMPILER_VALUES_H_
#define SRC_COMPILER_VALUES_H_

#include <cmath>
#include <cstdint>
#include <optional>
#include <variant>
#include <vector>

#include "src/constraints/linear_combination.h"

namespace zaatar {

template <typename F>
struct IntVal {
  LinearCombination<F> lc;
  // Magnitude bound: |value| < 2^width. A real number, so long accumulation
  // chains grow by log2(#terms), not by one bit per addition.
  double width = 1;
  std::optional<int64_t> static_value;

  static IntVal Constant(int64_t v) {
    IntVal r;
    r.lc = LinearCombination<F>(F::FromInt(v));
    uint64_t mag = v >= 0 ? static_cast<uint64_t>(v)
                          : static_cast<uint64_t>(-(v + 1)) + 1;
    size_t bits = 1;
    while ((uint64_t{1} << bits) <= mag && bits < 63) {
      bits++;
    }
    r.width = static_cast<double>(bits);
    r.static_value = v;
    return r;
  }

  bool IsStatic() const { return static_value.has_value(); }
};

template <typename F>
struct BoolVal {
  LinearCombination<F> lc;  // guaranteed 0 or 1
  std::optional<bool> static_value;

  static BoolVal Constant(bool v) {
    BoolVal r;
    r.lc = LinearCombination<F>(v ? F::One() : F::Zero());
    r.static_value = v;
    return r;
  }

  bool IsStatic() const { return static_value.has_value(); }
};

template <typename F>
struct RatVal {
  IntVal<F> num;
  IntVal<F> den;  // positive by construction

  static RatVal FromInt(const IntVal<F>& v) {
    RatVal r;
    r.num = v;
    r.den = IntVal<F>::Constant(1);
    return r;
  }
};

template <typename F>
struct Value;

template <typename F>
struct ArrayVal {
  std::vector<size_t> dims;       // outermost first
  std::vector<Value<F>> elems;    // row-major, dims product elements
};

template <typename F>
struct Value {
  std::variant<IntVal<F>, BoolVal<F>, RatVal<F>, ArrayVal<F>> v;

  Value() : v(IntVal<F>::Constant(0)) {}
  Value(IntVal<F> x) : v(std::move(x)) {}          // NOLINT(runtime/explicit)
  Value(BoolVal<F> x) : v(std::move(x)) {}         // NOLINT(runtime/explicit)
  Value(RatVal<F> x) : v(std::move(x)) {}          // NOLINT(runtime/explicit)
  Value(ArrayVal<F> x) : v(std::move(x)) {}        // NOLINT(runtime/explicit)

  bool IsInt() const { return std::holds_alternative<IntVal<F>>(v); }
  bool IsBool() const { return std::holds_alternative<BoolVal<F>>(v); }
  bool IsRational() const { return std::holds_alternative<RatVal<F>>(v); }
  bool IsArray() const { return std::holds_alternative<ArrayVal<F>>(v); }

  const IntVal<F>& AsInt() const { return std::get<IntVal<F>>(v); }
  const BoolVal<F>& AsBool() const { return std::get<BoolVal<F>>(v); }
  const RatVal<F>& AsRational() const { return std::get<RatVal<F>>(v); }
  const ArrayVal<F>& AsArray() const { return std::get<ArrayVal<F>>(v); }
  ArrayVal<F>& AsArray() { return std::get<ArrayVal<F>>(v); }
};

}  // namespace zaatar

#endif  // SRC_COMPILER_VALUES_H_
