// Abstract syntax tree for zlang.
//
// Grammar sketch (recursive descent, see parser.cc):
//   program  := ('program' ident ';')? decl* stmt*
//   decl     := ('input'|'output'|'var') type ident ('[' expr ']')* ('=' expr)? ';'
//            |  'const' ident '=' expr ';'
//   type     := 'int8'|'int16'|'int32'|'int64'|'int' '<' expr '>'
//            |  'bool' | 'rational' '<' expr ',' expr '>'
//   stmt     := lvalue '=' expr ';' | 'if' '(' expr ')' block ('else' ...)?
//            |  'for' ident 'in' expr '..' expr block | block
//   expr     := the usual C precedence with ?:, ||, &&, comparisons, + - * / %,
//               unary - !, calls (builtins min/max/abs), and array indexing.

#ifndef SRC_COMPILER_AST_H_
#define SRC_COMPILER_AST_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/compiler/token.h"

namespace zaatar {

struct TypeNode {
  enum class Kind { kInt, kBool, kRational };
  Kind kind = Kind::kInt;
  size_t width = 32;      // int width, or rational numerator width
  size_t den_width = 0;   // rational denominator width
  std::vector<size_t> dims;  // array dimensions (outermost first); empty =
                             // scalar. Filled by the parser from constant
                             // expressions.

  bool IsArray() const { return !dims.empty(); }
  size_t ElementCount() const {
    size_t n = 1;
    for (size_t d : dims) {
      n *= d;
    }
    return n;
  }
};

struct Expr {
  enum class Kind {
    kIntLit,
    kBoolLit,
    kVarRef,
    kIndex,    // children[0] = base var ref, children[1..] = indices
    kBinary,   // op, children[0], children[1]
    kUnary,    // op, children[0]
    kTernary,  // children[0] ? children[1] : children[2]
    kCall,     // name(children...)
  };
  Kind kind;
  int64_t int_value = 0;
  std::string name;
  TokenKind op = TokenKind::kEnd;
  std::vector<std::unique_ptr<Expr>> children;
  size_t line = 0, column = 0;
};

using ExprPtr = std::unique_ptr<Expr>;

struct Declaration;

struct Stmt {
  enum class Kind {
    kAssign, kIf, kFor, kBlock, kAssert, kReturn, kVarDecl,
  };
  Kind kind;
  // kAssign: name, indices (may be empty), value.
  // kIf: value = condition, body = then, else_body = else.
  // kFor: name = loop variable, lo/hi = inclusive bounds, body.
  // kAssert / kReturn: value = the asserted / returned expression.
  std::string name;
  std::vector<ExprPtr> indices;
  ExprPtr value;
  ExprPtr lo, hi;
  std::vector<std::unique_ptr<Stmt>> body;
  std::vector<std::unique_ptr<Stmt>> else_body;
  std::unique_ptr<Declaration> decl;  // kVarDecl
  size_t line = 0, column = 0;
};

using StmtPtr = std::unique_ptr<Stmt>;

struct Declaration {
  enum class Kind { kInput, kOutput, kLocal, kConstant };
  Kind kind;
  std::string name;
  TypeNode type;
  ExprPtr init;  // kConstant value; optional kLocal initializer
  // Width and dimension expressions may reference earlier `const`
  // declarations, so they are resolved during evaluation, not parsing.
  ExprPtr width_expr;
  ExprPtr den_width_expr;
  std::vector<ExprPtr> dim_exprs;
  size_t line = 0, column = 0;
};

// A user-defined function: scalar parameters, statements, and a trailing
// `return expr;`. Functions are inlined at each call site (the constraint
// model has no notion of a call); they may read program-level variables but
// their writes are local.
struct FunctionDecl {
  std::string name;
  TypeNode return_type;
  struct Param {
    std::string name;
    TypeNode type;
    ExprPtr width_expr;
    ExprPtr den_width_expr;
  };
  std::vector<Param> params;
  std::vector<StmtPtr> body;  // last statement must be kReturn
  size_t line = 0, column = 0;
};

struct ProgramAst {
  std::string name;
  std::vector<Declaration> decls;
  std::vector<FunctionDecl> functions;
  std::vector<StmtPtr> body;
};

}  // namespace zaatar

#endif  // SRC_COMPILER_AST_H_
