// The Ginger -> Zaatar constraint transformation (paper §4): rewrite every
// degree-2 constraint system into quadratic form by replacing degree-2 terms
// with fresh variables, plus one product constraint per distinct term.
//
// |Z_zaatar| = |Z_ginger| + K2 and |C_zaatar| = |C_ginger| + K2, where K2 is
// the number of distinct degree-2 terms (GingerSystem::DistinctQuadTermCount).
//
// An optional folding optimization emits a constraint whose only degree-2
// content is a single product directly as pA·pB = pC (no fresh variable);
// this covers multiplication gates and bit constraints, and only tightens
// the K2 bound. It can be disabled to get the paper's uniform transform.

#ifndef SRC_CONSTRAINTS_TRANSFORM_H_
#define SRC_CONSTRAINTS_TRANSFORM_H_

#include <algorithm>
#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "src/constraints/ginger.h"
#include "src/constraints/r1cs.h"

namespace zaatar {

struct TransformOptions {
  // If true, constraints with exactly one degree-2 term become a single
  // quadratic-form constraint with no auxiliary variable.
  bool fold_single_quad = true;
};

template <typename F>
struct ZaatarTransform {
  R1cs<F> r1cs;
  // products[i] = (a, b) in *Ginger* index space: auxiliary variable
  // (old_num_unbound + i) carries the value w[a]·w[b].
  std::vector<std::pair<uint32_t, uint32_t>> products;
  size_t ginger_num_unbound = 0;

  size_t NumAuxiliaryVariables() const { return products.size(); }

  // Maps a Ginger variable index into the Zaatar index space.
  uint32_t Remap(uint32_t v) const {
    return v < ginger_num_unbound
               ? v
               : v + static_cast<uint32_t>(products.size());
  }

  // Extends a satisfying Ginger assignment (full vector, Z then X then Y)
  // into the Zaatar assignment by computing the product variables.
  std::vector<F> ExtendAssignment(const std::vector<F>& ginger) const {
    std::vector<F> out;
    out.reserve(ginger.size() + products.size());
    out.insert(out.end(), ginger.begin(),
               ginger.begin() + ginger_num_unbound);
    for (const auto& [a, b] : products) {
      out.push_back(ginger[a] * ginger[b]);
    }
    out.insert(out.end(), ginger.begin() + ginger_num_unbound, ginger.end());
    return out;
  }
};

template <typename F>
ZaatarTransform<F> GingerToZaatar(const GingerSystem<F>& g,
                                  const TransformOptions& options = {}) {
  ZaatarTransform<F> t;
  t.ginger_num_unbound = g.layout.num_unbound;

  // Line attribution for synthesized product rows: a degree-2 pair can be
  // shared by several constraints (including folded ones), and the first one
  // to need it may come from compiler-internal bookkeeping with no source
  // line. Prefer the first *nonzero* line among every constraint that
  // references the pair, so the synthesized row stays attributable to
  // program text whenever any user of the pair is.
  std::map<std::pair<uint32_t, uint32_t>, uint32_t> pair_lines;
  for (size_t j = 0; j < g.constraints.size(); j++) {
    uint32_t line = g.SourceLineOf(j);
    if (line == 0) {
      continue;
    }
    for (const auto& q : g.constraints[j].quad) {
      pair_lines.emplace(std::minmax(q.a, q.b), line);
    }
  }

  // First pass: allocate auxiliary variables for distinct degree-2 terms that
  // are not folded away.
  std::map<std::pair<uint32_t, uint32_t>, uint32_t> aux;  // pair -> aux index
  std::vector<uint32_t> product_lines;
  for (size_t j = 0; j < g.constraints.size(); j++) {
    const auto& c = g.constraints[j];
    if (options.fold_single_quad && c.quad.size() == 1) {
      continue;
    }
    for (const auto& q : c.quad) {
      auto key = std::minmax(q.a, q.b);
      if (aux.find(key) == aux.end()) {
        uint32_t idx = static_cast<uint32_t>(t.products.size());
        aux.emplace(key, idx);
        t.products.emplace_back(key.first, key.second);
        auto pl = pair_lines.find(key);
        product_lines.push_back(pl != pair_lines.end() ? pl->second
                                                       : g.SourceLineOf(j));
      }
    }
  }

  const uint32_t k2 = static_cast<uint32_t>(t.products.size());
  t.r1cs.layout = g.layout;
  t.r1cs.layout.num_unbound += k2;
  t.r1cs.constraints.reserve(g.constraints.size() + k2);
  if (!g.source_lines.empty()) {
    t.r1cs.source_lines.reserve(g.constraints.size() + k2);
  }

  auto remap = [&](uint32_t v) { return t.Remap(v); };

  // Second pass: rewrite each constraint.
  for (size_t j = 0; j < g.constraints.size(); j++) {
    const auto& c = g.constraints[j];
    if (!g.source_lines.empty()) {
      t.r1cs.source_lines.push_back(g.SourceLineOf(j));
    }
    R1csConstraint<F> rc;
    if (options.fold_single_quad && c.quad.size() == 1) {
      // linear + k·a·b = 0  ->  (w_a)·(k·w_b) = -linear
      const auto& q = c.quad[0];
      rc.a = LinearCombination<F>::Variable(remap(q.a));
      rc.b.AddTerm(remap(q.b), q.coeff);
      rc.c = (c.linear * (-F::One()));
      rc.c.RemapVariables(remap);
    } else {
      // linear + sum k_i·prod_i = 0  ->  (linear + sum k_i·aux_i)·(1) = 0
      rc.a = c.linear;
      rc.a.RemapVariables(remap);
      for (const auto& q : c.quad) {
        uint32_t aux_idx = aux.at(std::minmax(q.a, q.b));
        rc.a.AddTerm(static_cast<uint32_t>(g.layout.num_unbound) + aux_idx,
                     q.coeff);
      }
      rc.a.Compact();
      rc.b.AddConstant(F::One());
      // rc.c stays zero.
    }
    t.r1cs.constraints.push_back(std::move(rc));
  }

  // Product constraints: w_a · w_b = aux.
  for (size_t i = 0; i < t.products.size(); i++) {
    if (!g.source_lines.empty()) {
      t.r1cs.source_lines.push_back(product_lines[i]);
    }
    R1csConstraint<F> rc;
    rc.a = LinearCombination<F>::Variable(remap(t.products[i].first));
    rc.b = LinearCombination<F>::Variable(remap(t.products[i].second));
    rc.c = LinearCombination<F>::Variable(
        static_cast<uint32_t>(g.layout.num_unbound + i));
    t.r1cs.constraints.push_back(std::move(rc));
  }

  return t;
}

}  // namespace zaatar

#endif  // SRC_CONSTRAINTS_TRANSFORM_H_
