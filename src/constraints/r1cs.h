// Quadratic-form constraints (paper §4): each constraint j is
//     p_{j,A}(W) · p_{j,B}(W) = p_{j,C}(W)
// with degree-1 p's. This is the form Zaatar's QAP encoding requires; the
// Ginger->Zaatar transform (src/constraints/transform.h) produces it.

#ifndef SRC_CONSTRAINTS_R1CS_H_
#define SRC_CONSTRAINTS_R1CS_H_

#include <algorithm>
#include <vector>

#include "src/constraints/linear_combination.h"

namespace zaatar {

template <typename F>
struct R1csConstraint {
  LinearCombination<F> a;
  LinearCombination<F> b;
  LinearCombination<F> c;

  bool IsSatisfied(const std::vector<F>& assignment) const {
    return a.Evaluate(assignment) * b.Evaluate(assignment) ==
           c.Evaluate(assignment);
  }

  // Calls fn(var) for every variable occurrence across the three sides.
  template <typename Fn>
  void ForEachVariable(Fn&& fn) const {
    for (const auto* side : {&a, &b, &c}) {
      for (const auto& t : side->terms()) {
        fn(t.first);
      }
    }
  }

  long MaxVariable() const {
    return std::max({a.MaxVariable(), b.MaxVariable(), c.MaxVariable()});
  }

  // True when every side is the zero combination (the 0·0 = 0 tautology).
  bool IsEmpty() const {
    return a.IsConstant() && a.constant().IsZero() && b.IsConstant() &&
           b.constant().IsZero() && c.IsConstant() && c.constant().IsZero();
  }
};

template <typename F>
class R1cs {
 public:
  VariableLayout layout;
  std::vector<R1csConstraint<F>> constraints;
  // Parallel to `constraints` when non-empty (0 = unknown); see
  // GingerSystem::source_lines.
  std::vector<uint32_t> source_lines;

  size_t NumConstraints() const { return constraints.size(); }
  size_t NumVariables() const { return layout.Total(); }

  uint32_t SourceLineOf(size_t j) const {
    return j < source_lines.size() ? source_lines[j] : 0;
  }

  bool IsSatisfied(const std::vector<F>& assignment) const {
    for (const auto& c : constraints) {
      if (!c.IsSatisfied(assignment)) {
        return false;
      }
    }
    return true;
  }

  long FirstViolated(const std::vector<F>& assignment) const {
    for (size_t j = 0; j < constraints.size(); j++) {
      if (!constraints[j].IsSatisfied(assignment)) {
        return static_cast<long>(j);
      }
    }
    return -1;
  }

  // Total nonzero coefficients across the A, B, C sides (drives the
  // verifier's computation-specific query cost, <= K + 3·K2 per §A.3).
  size_t NonzeroCount() const {
    size_t n = 0;
    for (const auto& c : constraints) {
      n += c.a.TermCount() + c.b.TermCount() + c.c.TermCount();
    }
    return n;
  }
};

}  // namespace zaatar

#endif  // SRC_CONSTRAINTS_R1CS_H_
