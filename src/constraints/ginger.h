// Ginger's constraint formalism (paper §2.2): systems of degree-2 equations
// over F. Each constraint is
//     linear(W) + sum_k coeff_k * W_{a_k} * W_{b_k} = 0,
// i.e. an arbitrary degree-2 polynomial with any number of additive terms.
// This is the compiler's output format and the baseline system's native
// representation (its proof vector is (z, z ⊗ z)).

#ifndef SRC_CONSTRAINTS_GINGER_H_
#define SRC_CONSTRAINTS_GINGER_H_

#include <algorithm>
#include <cstdint>
#include <set>
#include <utility>
#include <vector>

#include "src/constraints/linear_combination.h"

namespace zaatar {

template <typename F>
struct QuadTerm {
  uint32_t a;
  uint32_t b;
  F coeff;
};

template <typename F>
struct GingerConstraint {
  LinearCombination<F> linear;
  std::vector<QuadTerm<F>> quad;

  F Evaluate(const std::vector<F>& assignment) const {
    F acc = linear.Evaluate(assignment);
    for (const auto& t : quad) {
      acc += t.coeff * assignment[t.a] * assignment[t.b];
    }
    return acc;
  }

  // Calls fn(var) for every variable occurrence (linear terms first, then
  // both slots of each degree-2 term). Occurrences are not deduplicated.
  template <typename Fn>
  void ForEachVariable(Fn&& fn) const {
    for (const auto& t : linear.terms()) {
      fn(t.first);
    }
    for (const auto& t : quad) {
      fn(t.a);
      fn(t.b);
    }
  }

  long MaxVariable() const {
    long m = linear.MaxVariable();
    for (const auto& t : quad) {
      m = std::max(m, static_cast<long>(std::max(t.a, t.b)));
    }
    return m;
  }

  bool IsEmpty() const { return linear.IsConstant() && quad.empty(); }
};

template <typename F>
class GingerSystem {
 public:
  VariableLayout layout;
  std::vector<GingerConstraint<F>> constraints;
  // Parallel to `constraints` when non-empty: the zlang source line each
  // constraint was emitted for (0 = unknown). Hand-built systems may leave
  // this empty; SourceLineOf handles both shapes.
  std::vector<uint32_t> source_lines;

  size_t NumConstraints() const { return constraints.size(); }
  size_t NumVariables() const { return layout.Total(); }

  uint32_t SourceLineOf(size_t j) const {
    return j < source_lines.size() ? source_lines[j] : 0;
  }

  // Checks every constraint against a full assignment (Z then X then Y).
  bool IsSatisfied(const std::vector<F>& assignment) const {
    for (const auto& c : constraints) {
      if (!c.Evaluate(assignment).IsZero()) {
        return false;
      }
    }
    return true;
  }

  // Index of the first violated constraint, or -1 (diagnostics).
  long FirstViolated(const std::vector<F>& assignment) const {
    for (size_t j = 0; j < constraints.size(); j++) {
      if (!constraints[j].Evaluate(assignment).IsZero()) {
        return static_cast<long>(j);
      }
    }
    return -1;
  }

  // K in the Figure 3 cost model: total number of additive terms across all
  // constraints (linear terms + degree-2 terms; constants excluded).
  size_t AdditiveTermCount() const {
    size_t k = 0;
    for (const auto& c : constraints) {
      k += c.linear.TermCount() + c.quad.size();
    }
    return k;
  }

  // K2 in the Figure 3 cost model: the number of *distinct* degree-2 terms
  // (unordered variable pairs) appearing anywhere in the system. This is
  // exactly the number of auxiliary variables the Ginger->Zaatar transform
  // introduces.
  size_t DistinctQuadTermCount() const {
    std::set<std::pair<uint32_t, uint32_t>> seen;
    for (const auto& c : constraints) {
      for (const auto& t : c.quad) {
        seen.insert(std::minmax(t.a, t.b));
      }
    }
    return seen.size();
  }
};

}  // namespace zaatar

#endif  // SRC_CONSTRAINTS_GINGER_H_
