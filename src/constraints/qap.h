// Quadratic Arithmetic Program encoding of a quadratic-form constraint set
// (paper Appendix A.1, after Gennaro et al.).
//
// Interpolation points: sigma_j = j for j = 1..|C| (the arithmetic
// progression that enables the incremental barycentric weights of Appendix
// A.3), plus the extra point 0 at which every A_i/B_i/C_i vanishes.
//
//   - Prover side: ComputeH interpolates A(t) = sum_i w_i A_i(t) (and B, C)
//     from their evaluations at the points, forms P_w = A·B - C, and divides
//     by D(t) = prod_j (t - sigma_j). Cost ~ 3·f·|C|·log²|C| via the
//     subproduct-tree machinery in src/poly.
//   - Verifier side: EvaluateAtTau computes {A_i(tau)}, {B_i(tau)},
//     {C_i(tau)} for all rows i (row 0 = constant term) and D(tau) with
//     barycentric Lagrange evaluation, in O(|C| + nnz) field operations plus
//     one batched inversion.

#ifndef SRC_CONSTRAINTS_QAP_H_
#define SRC_CONSTRAINTS_QAP_H_

#include <memory>
#include <string>
#include <vector>

#include "src/constraints/r1cs.h"
#include "src/obs/trace.h"
#include "src/poly/algorithms.h"
#include "src/util/status.h"

namespace zaatar {

template <typename F>
class Qap {
 public:
  explicit Qap(const R1cs<F>& cs) : cs_(&cs) {}

  const R1cs<F>& constraint_system() const { return *cs_; }
  size_t Degree() const { return cs_->NumConstraints(); }

  // The divisor polynomial D(t) = prod_{j=1..|C|} (t - j), materialized from
  // the subproduct tree. Static analysis checks deg D == |C| against the
  // constraint system instead of trusting the Degree() definition.
  Polynomial<F> Divisor() const { return Tree().Root().ShiftDown(1); }

  // ----- Prover -----

  struct HResult {
    std::vector<F> h;  // |C|+1 coefficients of H(t), low degree first
    bool exact;        // true iff D(t) divided P_w(t) exactly (i.e. the
                       // assignment satisfies the constraints)
  };

  // Computes the coefficients of H(t) = P_w(t) / D(t) for the given full
  // assignment. For an unsatisfying assignment `exact` is false and `h` is
  // the polynomial quotient (useful for building cheating provers in tests).
  //
  // Runs the residue-domain pipeline (DESIGN.md §15): interpolate A, B, C in
  // residue form over the subproduct tree's cached node images, form
  // A·B − C with one renormalize, and divide by D(t) through the cached
  // Newton inverse of rev(D) — only the top half of P_w feeds the quotient
  // (rev_{2m}(P_w) ≡ rev_m(q)·rev_m(D) mod x^{m+1}, D monic). Exactness is
  // read off the evaluations: D | P_w iff P_w vanishes at every point j,
  // i.e. A(j)·B(j) = C(j) for j = 1..m — equivalent to the remainder test
  // of ComputeHNaive, whose output this must match bit for bit (enforced by
  // the differential suites in tests/qap_test.cc).
  HResult ComputeH(const std::vector<F>& assignment) const {
    obs::Span span("qap.compute_h");
    const size_t m = Degree();
    const SubproductTree<F>& tree = Tree();
    const ProverContext& ctx = Prover();
    const size_t workers = PolyWorkers();

    std::vector<F> ea(m + 1, F::Zero()), eb(m + 1, F::Zero()),
        ec(m + 1, F::Zero());
    for (size_t j = 0; j < m; j++) {
      const auto& c = cs_->constraints[j];
      ea[j + 1] = c.a.Evaluate(assignment);
      eb[j + 1] = c.b.Evaluate(assignment);
      ec[j + 1] = c.c.Evaluate(assignment);
    }
    HResult out;
    out.exact = true;
    for (size_t j = 1; j <= m; j++) {
      if (ea[j] * eb[j] != ec[j]) {
        out.exact = false;
        break;
      }
    }

    ResiduePoly<F> ra, rb, rc;
    {
      obs::Span interp("qap.interpolate");
      ra = tree.InterpolateResidue(ea, *ctx.basis, workers);
      rb = tree.InterpolateResidue(eb, *ctx.basis, workers);
      rc = tree.InterpolateResidue(ec, *ctx.basis, workers);
    }
    ResiduePoly<F> pw;
    {
      obs::Span mul("qap.mul");
      pw = ResiduePoly<F>::Mul(ra, rb, workers);  // length 2m+1
      pw = ResiduePoly<F>::Sub(pw, rc, workers);
      pw.Renormalize(workers);
    }
    {
      obs::Span divide("qap.divide");
      ResiduePoly<F> hi = pw.Reverse(2 * m).Truncate(m + 1);
      ResiduePoly<F> q_rev =
          ResiduePoly<F>::MulImages(hi, ctx.inv_images, m + 1, workers);
      std::vector<F> hv = q_rev.ToCoefficients(workers);
      out.h.assign(m + 1, F::Zero());
      for (size_t i = 0; i <= m; i++) {
        out.h[i] = hv[m - i];
      }
    }
    return out;
  }

  // The frozen coefficient-form pipeline ComputeH replaced: interpolate with
  // Polynomial products, divide with DivRem, read exactness off the
  // remainder. Kept verbatim as the cross-PR differential yardstick — the
  // residue path must reproduce its output bit for bit.
  HResult ComputeHNaive(const std::vector<F>& assignment) const {
    obs::Span span("qap.compute_h_naive");
    const size_t m = Degree();
    const SubproductTree<F>& tree = Tree();

    std::vector<F> ea(m + 1, F::Zero()), eb(m + 1, F::Zero()),
        ec(m + 1, F::Zero());
    for (size_t j = 0; j < m; j++) {
      const auto& c = cs_->constraints[j];
      ea[j + 1] = c.a.Evaluate(assignment);
      eb[j + 1] = c.b.Evaluate(assignment);
      ec[j + 1] = c.c.Evaluate(assignment);
    }
    Polynomial<F> pa = tree.Interpolate(ea);
    Polynomial<F> pb = tree.Interpolate(eb);
    Polynomial<F> pc = tree.Interpolate(ec);
    Polynomial<F> pw = pa * pb - pc;

    // D(t) = Root()/t since the point set is {0, 1, .., m}.
    Polynomial<F> d = tree.Root().ShiftDown(1);
    auto [q, r] = DivRem(pw, d);

    HResult out;
    out.exact = r.IsZero();
    out.h.assign(m + 1, F::Zero());
    for (size_t i = 0; i < q.CoefficientCount() && i <= m; i++) {
      out.h[i] = q[i];
    }
    return out;
  }

  // Precomputed residue-domain prover state: the CRT basis sized for the
  // whole pipeline's bound growth and the forward images of
  // NewtonInverse(rev_m(D), m+1) at the product transform size. Built once
  // per Qap and reused across every instance of a batch. Public so the
  // static analyzer can probe the rewritten division path
  // (src/analysis/pipeline_rules.h).
  struct ProverContext {
    const CrtBasis<F>* basis = nullptr;
    NttImages inv_images;
  };

  const ProverContext& Prover() const {
    if (prover_ == nullptr) {
      const size_t m = Degree();
      const size_t workers = PolyWorkers();
      auto ctx = std::make_unique<ProverContext>();
      // Bound headroom over the plain product bound 2B + log: +2 for the
      // padded subtraction in A·B − C, +2 for Newton's 2 − f·g step.
      size_t bound = 2 * F::kModulusBits + CeilLog2(2 * m + 1) + 4;
      ctx->basis = &CrtBasis<F>::Get(CrtBasisSizeForBound(bound));
      ResiduePoly<F> rev_d =
          ToResidue(Divisor().Reverse(m), m + 1, *ctx->basis, workers);
      ResiduePoly<F> inv = ResidueNewtonInverse(rev_d, m + 1, workers);
      ctx->inv_images = inv.ForwardImages(CeilLog2(2 * m + 1), workers);
      prover_ = std::move(ctx);
    }
    return *prover_;
  }

  // Builds every lazily-cached prover artifact — subproduct tree,
  // interpolation weights, divisor inverse images, tree node images — so
  // batch pipelines pay the one-time setup outside the per-instance loop
  // (and outside the per-instance ParallelFor, keeping the lazy caches
  // single-threaded).
  void WarmProver() const {
    const ProverContext& ctx = Prover();
    Tree().InterpolationWeights();
    Tree().WarmResidueImages(*ctx.basis, PolyWorkers());
  }

  // ----- Verifier -----

  struct Evaluation {
    // Row i+1 corresponds to variable i; row 0 is the constant term.
    std::vector<F> a_rows;
    std::vector<F> b_rows;
    std::vector<F> c_rows;
    F d_tau;
  };

  // Requires tau outside the interpolation set {0, 1, ..., |C|}: a
  // colliding tau would batch-invert a zero and poison every barycentric
  // weight, so it is rejected with a typed error instead (callers resample;
  // the collision probability for a uniform tau is (|C|+1)/|F|).
  StatusOr<Evaluation> EvaluateAtTau(const F& tau) const {
    obs::Span span("qap.evaluate_at_tau");
    const size_t m = Degree();
    const size_t rows = cs_->NumVariables() + 1;

    // Barycentric pieces over points 0..m:
    //   ell(tau) = prod_k (tau - k)
    //   1/v_j    = prod_{k != j} (j - k), built incrementally:
    //              1/v_{j+1} = 1/v_j · (j+1) / (j - m)
    //   c_j      = ell(tau) · v_j / (tau - j)
    // We batch-invert the products (1/v_j)·(tau - j) to get all c_j with a
    // single field inversion.
    std::vector<F> diff(m + 1);
    F ell = F::One();
    for (size_t k = 0; k <= m; k++) {
      diff[k] = tau - F::FromUint(k);
      if (diff[k].IsZero()) {
        return OutOfRangeError(
            "tau collides with interpolation point " + std::to_string(k) +
            " of the QAP point set {0.." + std::to_string(m) + "}");
      }
      ell *= diff[k];
    }

    // inverses of 1..m for the incremental weight recurrence
    std::vector<F> small_inv(m + 1);
    for (size_t k = 1; k <= m; k++) {
      small_inv[k] = F::FromUint(k);
    }
    BatchInvert(small_inv.data() + 1, m);

    // Slot m+1 carries diff[0] so D(tau)'s inversion rides the same batch
    // instead of paying its own Fermat walk below.
    std::vector<F> denom(m + 2);  // (1/v_j)·(tau - j)
    F iv = F::One();              // 1/v_0 = (-1)^m · m!
    for (size_t k = 1; k <= m; k++) {
      iv *= -F::FromUint(k);
    }
    for (size_t j = 0; j <= m; j++) {
      denom[j] = iv * diff[j];
      if (j < m) {
        // 1/v_{j+1} = 1/v_j · (j+1) / (j - m) = -1/v_j · (j+1) · inv(m-j)
        iv = -(iv * F::FromUint(j + 1) * small_inv[m - j]);
      }
    }
    denom[m + 1] = diff[0];
    BatchInvert(denom.data(), m + 2);
    std::vector<F> cj(m + 1);
    for (size_t j = 0; j <= m; j++) {
      cj[j] = ell * denom[j];
    }

    Evaluation ev;
    ev.a_rows.assign(rows, F::Zero());
    ev.b_rows.assign(rows, F::Zero());
    ev.c_rows.assign(rows, F::Zero());
    // All polynomials vanish at point 0, so only j = 1..m contribute.
    for (size_t j = 0; j < m; j++) {
      const auto& c = cs_->constraints[j];
      const F& w = cj[j + 1];
      Accumulate(c.a, w, &ev.a_rows);
      Accumulate(c.b, w, &ev.b_rows);
      Accumulate(c.c, w, &ev.c_rows);
    }
    // D(tau) = ell(tau) / (tau - 0), with 1/(tau - 0) from the batch above.
    ev.d_tau = ell * denom[m + 1];
    return ev;
  }

 private:
  static void Accumulate(const LinearCombination<F>& lc, const F& w,
                         std::vector<F>* rows) {
    (*rows)[0] += lc.constant() * w;
    for (const auto& [v, coeff] : lc.terms()) {
      (*rows)[v + 1] += coeff * w;
    }
  }

  const SubproductTree<F>& Tree() const {
    if (tree_ == nullptr) {
      std::vector<F> points(Degree() + 1);
      for (size_t k = 0; k < points.size(); k++) {
        points[k] = F::FromUint(k);
      }
      tree_ = std::make_unique<SubproductTree<F>>(std::move(points));
    }
    return *tree_;
  }

  const R1cs<F>* cs_;
  mutable std::unique_ptr<SubproductTree<F>> tree_;
  mutable std::unique_ptr<ProverContext> prover_;
};

}  // namespace zaatar

#endif  // SRC_CONSTRAINTS_QAP_H_
