// Sparse linear combinations over constraint variables, plus the shared
// variable-layout convention.
//
// Variable index space (paper §2.1 / Appendix A.1 notation):
//   [0, num_unbound)                      — Z, the unbound ("witness") vars
//   [num_unbound, num_unbound + |x|)      — X, the input variables
//   [.., total)                           — Y, the output variables
// The constant term is carried separately (the QAP maps it to row 0).
//
// Keeping Z first means the prover's z-vector is just assignment[0..n') and
// new auxiliary variables (e.g. from the Ginger->Zaatar transform) append to
// the Z region with a simple shift of the X/Y indices.

#ifndef SRC_CONSTRAINTS_LINEAR_COMBINATION_H_
#define SRC_CONSTRAINTS_LINEAR_COMBINATION_H_

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

namespace zaatar {

struct VariableLayout {
  size_t num_unbound = 0;  // |Z|
  size_t num_inputs = 0;   // |x|
  size_t num_outputs = 0;  // |y|

  size_t Total() const { return num_unbound + num_inputs + num_outputs; }
  size_t FirstInput() const { return num_unbound; }
  size_t FirstOutput() const { return num_unbound + num_inputs; }
  bool IsUnbound(uint32_t v) const { return v < num_unbound; }
  bool IsInput(uint32_t v) const {
    return v >= FirstInput() && v < FirstOutput();
  }
  bool IsOutput(uint32_t v) const {
    return v >= FirstOutput() && v < Total();
  }
};

template <typename F>
class LinearCombination {
 public:
  LinearCombination() : constant_(F::Zero()) {}
  explicit LinearCombination(const F& constant) : constant_(constant) {}

  static LinearCombination Variable(uint32_t v) {
    LinearCombination lc;
    lc.AddTerm(v, F::One());
    return lc;
  }

  void AddTerm(uint32_t var, const F& coeff) {
    if (!coeff.IsZero()) {
      terms_.emplace_back(var, coeff);
    }
  }
  void AddConstant(const F& c) { constant_ += c; }

  const std::vector<std::pair<uint32_t, F>>& terms() const { return terms_; }
  const F& constant() const { return constant_; }

  bool IsConstant() const { return terms_.empty(); }
  size_t TermCount() const { return terms_.size(); }

  F Evaluate(const std::vector<F>& assignment) const {
    F acc = constant_;
    for (const auto& [v, c] : terms_) {
      assert(v < assignment.size());
      acc += c * assignment[v];
    }
    return acc;
  }

  LinearCombination operator+(const LinearCombination& o) const {
    LinearCombination r = *this;
    r.constant_ += o.constant_;
    r.terms_.insert(r.terms_.end(), o.terms_.begin(), o.terms_.end());
    return r;
  }

  LinearCombination operator*(const F& s) const {
    LinearCombination r;
    r.constant_ = constant_ * s;
    r.terms_.reserve(terms_.size());
    for (const auto& [v, c] : terms_) {
      r.AddTerm(v, c * s);
    }
    return r;
  }

  // Merges duplicate variable entries and drops zero coefficients.
  void Compact() {
    if (terms_.size() <= 1) {
      return;
    }
    std::sort(terms_.begin(), terms_.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    std::vector<std::pair<uint32_t, F>> merged;
    merged.reserve(terms_.size());
    for (const auto& t : terms_) {
      if (!merged.empty() && merged.back().first == t.first) {
        merged.back().second += t.second;
      } else {
        merged.push_back(t);
      }
    }
    merged.erase(std::remove_if(merged.begin(), merged.end(),
                                [](const auto& t) {
                                  return t.second.IsZero();
                                }),
                 merged.end());
    terms_ = std::move(merged);
  }

  // Rewrites variable indices (used when a transform grows the Z region).
  template <typename Fn>
  void RemapVariables(Fn&& fn) {
    for (auto& t : terms_) {
      t.first = fn(t.first);
    }
  }

  // Largest variable index referenced, or -1 when constant-only. Static
  // analysis uses this for index-bound checks without walking terms twice.
  long MaxVariable() const {
    long m = -1;
    for (const auto& t : terms_) {
      m = std::max(m, static_cast<long>(t.first));
    }
    return m;
  }

 private:
  std::vector<std::pair<uint32_t, F>> terms_;
  F constant_;
};

}  // namespace zaatar

#endif  // SRC_CONSTRAINTS_LINEAR_COMBINATION_H_
