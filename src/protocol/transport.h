// Message transports for the two-party protocol. A Transport moves opaque
// frames (serialized messages) between the prover and verifier sessions;
// the sessions never see anything but bytes, so swapping the in-memory
// loopback for a real socket changes no protocol code.
//
// Two implementations:
//   - LoopbackTransport: a pair of mutex/condvar frame queues. Thread-safe,
//     so a prover thread and a verifier thread can drive a real two-party
//     exchange in one process (the TSan CI stage does exactly that).
//   - PipeTransport: length-prefixed frames over a socketpair(2). The frame
//     length is read as an untrusted u32 and validated against a hard cap
//     before any allocation, and the body is read in bounded chunks — the
//     same hostile-length discipline as ByteReader::GetLength.
//
// Failure model (DESIGN.md §13): the peer is not just untrusted about
// *content* — it may also stall, flood, or die. Every wait is therefore
// bounded by TransportOptions deadlines (poll(2) on the pipe, wait_for on
// the loopback queues), expiring with a typed kDeadlineExceeded; the
// loopback queues carry depth/byte caps so a runaway sender blocks (with a
// deadline) instead of exhausting memory; and Receive() on a closed/empty
// transport returns a typed kTruncated ("connection closed") — sessions
// surface both instead of ever hanging a thread.

#ifndef SRC_PROTOCOL_TRANSPORT_H_
#define SRC_PROTOCOL_TRANSPORT_H_

#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#include <sys/socket.h>
#include <sys/types.h>
#include <sys/un.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstring>
#include <deque>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/util/status.h"

namespace zaatar {
namespace protocol {

// Hard cap on a single frame. The largest honest frame is a SetupMessage
// (query matrices dominate); 1 GiB leaves orders of magnitude of headroom
// while bounding what a hostile length prefix can make the receiver buffer.
inline constexpr uint64_t kMaxFrameBytes = 1ull << 30;

// Frames are read and written in bounded chunks so a large (but in-cap)
// frame never turns into one giant syscall, and a hostile length prefix on
// the read side fails fast once the sender stops producing bytes.
inline constexpr size_t kTransportChunkBytes = 1u << 20;

// How much of a claimed frame length the receiver commits to up front. A
// length prefix is a promise, not a delivery: the receiver reserves at most
// this much eagerly and grows only as bytes actually arrive, so a hostile
// "1 GiB incoming" prefix followed by silence costs one bounded allocation
// and then a deadline, never a gigabyte.
inline constexpr size_t kMaxEagerReserveBytes = 1u << 26;  // 64 MiB

// Per-endpoint failure-hardening knobs. A zero duration means "wait
// forever" — the pre-hardening behavior, and the right default for the
// trusted in-process harness paths; servers and the chaos suite set real
// deadlines. Queue caps of 0 mean unbounded (loopback only).
struct TransportOptions {
  std::chrono::milliseconds recv_deadline{0};  // per Receive() call
  std::chrono::milliseconds send_deadline{0};  // per Send() call
  // Applied instead of recv_deadline to the FIRST Receive() on the endpoint
  // (waiting for a peer that may never come up); zero falls back to
  // recv_deadline.
  std::chrono::milliseconds handshake_deadline{0};
  size_t max_queue_frames = 0;  // loopback: frames buffered per direction
  size_t max_queue_bytes = 0;   // loopback: payload bytes buffered

  // Production-shaped defaults: generous enough that no honest local
  // exchange ever trips them, tight enough that a dead peer is detected.
  static TransportOptions Hardened() {
    TransportOptions o;
    o.recv_deadline = std::chrono::milliseconds(30000);
    o.send_deadline = std::chrono::milliseconds(30000);
    o.handshake_deadline = std::chrono::milliseconds(30000);
    o.max_queue_frames = 64;
    o.max_queue_bytes = kMaxFrameBytes;
    return o;
  }
};

// True for failures of the channel itself — the peer stalled (deadline),
// the connection died (truncated), or the byte stream desynchronized into
// an impossible frame length. These are retryable by reconnecting; every
// other status is a protocol-level outcome or a local sequencing bug and
// must never be retried (a reject is final — see src/protocol/retry.h).
inline bool IsTransportFailure(const Status& s) {
  switch (s.code()) {
    case StatusCode::kTruncated:
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kLengthOverflow:
      return true;
    default:
      return false;
  }
}

namespace internal {

// Shared per-frame accounting for every Transport implementation. Counters
// and the byte histogram land in whatever Metrics registry is installed on
// the calling thread (no-ops otherwise).
inline void RecordFrameSent(size_t bytes) {
  obs::MetricAdd("transport.frames_sent");
  obs::MetricObserve("transport.frame_bytes_sent", bytes);
  // Direction-summed histogram kept for schema compatibility; consumers that
  // care about direction read the _sent/_received splits (a loopback link
  // observed from one registry counts every frame here twice — once per
  // direction — which is exactly why the splits exist).
  obs::MetricObserve("transport.frame_bytes", bytes);
}

inline void RecordFrameReceived(size_t bytes) {
  obs::MetricAdd("transport.frames_received");
  obs::MetricObserve("transport.frame_bytes_received", bytes);
  obs::MetricObserve("transport.frame_bytes", bytes);
}

inline void RecordDeadlineExceeded() {
  obs::MetricAdd("transport.deadline_exceeded");
}

// Absolute-deadline bookkeeping for one blocking call: constructed from a
// millisecond budget at call entry, consulted before each bounded wait so a
// multi-chunk read shares one deadline instead of resetting per chunk.
//
// Budget semantics: negative = infinite (never expires), zero = already
// expired — the caller gets exactly one non-blocking poll and then a typed
// kDeadlineExceeded, which is the immediate-or-fail probe admission control
// wants. (TransportOptions' "0 = wait forever" convention is translated at
// the call sites via OptionBudget; it never reaches this class as zero.)
class CallDeadline {
 public:
  explicit CallDeadline(std::chrono::milliseconds budget)
      : infinite_(budget.count() < 0),
        expires_at_(std::chrono::steady_clock::now() +
                    std::max(budget, std::chrono::milliseconds(0))) {}

  bool infinite() const { return infinite_; }

  // Remaining budget clamped to >= 0; meaningless when infinite().
  std::chrono::milliseconds Remaining() const {
    auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        expires_at_ - std::chrono::steady_clock::now());
    return left.count() < 0 ? std::chrono::milliseconds(0) : left;
  }

  bool Expired() const {
    return !infinite_ && std::chrono::steady_clock::now() >= expires_at_;
  }

  // poll(2) timeout argument: -1 for infinite, else remaining ms.
  int PollTimeoutMs() const {
    if (infinite_) {
      return -1;
    }
    auto left = Remaining().count();
    return static_cast<int>(std::min<int64_t>(
        left, static_cast<int64_t>(std::numeric_limits<int>::max())));
  }

 private:
  bool infinite_;
  std::chrono::steady_clock::time_point expires_at_;
};

// Translates a TransportOptions deadline (where 0 means "wait forever", the
// trusted-harness default) into a CallDeadline budget (where 0 means
// "expire immediately" and negative means infinite).
inline std::chrono::milliseconds OptionBudget(std::chrono::milliseconds d) {
  return d.count() == 0 ? std::chrono::milliseconds(-1) : d;
}

}  // namespace internal

class Transport {
 public:
  virtual ~Transport() = default;

  // Delivers one frame to the peer, preserving message boundaries. Blocks
  // at most the configured send deadline; kDeadlineExceeded past it.
  virtual Status Send(const std::vector<uint8_t>& frame) = 0;

  // Blocks until a frame arrives, the peer closes (kTruncated), or the
  // configured recv/handshake deadline expires (kDeadlineExceeded).
  virtual StatusOr<std::vector<uint8_t>> Receive() = 0;

  // Closes both directions. Any blocked or future Receive() on either side
  // fails with kTruncated; used to unwind a two-threaded exchange when one
  // side dies. Must be safe to call concurrently with in-flight Send() /
  // Receive() on the same object.
  virtual void Close() = 0;
};

// A matched pair of endpoints: left talks to right and vice versa.
struct TransportPair {
  std::unique_ptr<Transport> left;
  std::unique_ptr<Transport> right;
};

// Non-owning view of a Transport, for plumbing a caller-owned endpoint
// through APIs that take ownership (e.g. a RetryingSession fed a
// preconnected pair). Close() forwards — closing the view closes the link.
class TransportRef final : public Transport {
 public:
  explicit TransportRef(Transport* inner) : inner_(inner) {}

  Status Send(const std::vector<uint8_t>& frame) override {
    return inner_->Send(frame);
  }
  StatusOr<std::vector<uint8_t>> Receive() override {
    return inner_->Receive();
  }
  void Close() override { inner_->Close(); }

 private:
  Transport* inner_;
};

namespace internal {

// One direction of a loopback link: a bounded, deadline-aware frame queue.
// Push blocks while the queue is at its depth or byte cap (backpressure —
// a runaway sender stalls instead of growing the queue without bound) and
// Pop blocks while it is empty; both expire into kDeadlineExceeded.
class FrameQueue {
 public:
  FrameQueue() = default;
  FrameQueue(size_t max_frames, size_t max_bytes)
      : max_frames_(max_frames), max_bytes_(max_bytes) {}

  Status Push(std::vector<uint8_t> frame,
              std::chrono::milliseconds deadline = {}) {
    const size_t frame_bytes = frame.size();
    {
      std::unique_lock<std::mutex> lock(mu_);
      // An empty queue always admits one frame even past the byte cap, so a
      // frame larger than the cap degrades to rendezvous, not deadlock.
      auto has_room = [this, frame_bytes] {
        if (closed_) {
          return true;
        }
        if (frames_.empty()) {
          return true;
        }
        if (max_frames_ != 0 && frames_.size() >= max_frames_) {
          return false;
        }
        return max_bytes_ == 0 || buffered_bytes_ + frame_bytes <= max_bytes_;
      };
      if (deadline.count() > 0) {
        if (!cv_not_full_.wait_for(lock, deadline, has_room)) {
          RecordDeadlineExceeded();
          return DeadlineExceededError("transport send deadline exceeded");
        }
      } else {
        cv_not_full_.wait(lock, has_room);
      }
      if (closed_) {
        return TruncatedError("transport closed");
      }
      buffered_bytes_ += frame_bytes;
      frames_.push_back(std::move(frame));
      obs::MetricObserve("transport.queue_depth", frames_.size());
    }
    cv_not_empty_.notify_one();
    return Status::Ok();
  }

  StatusOr<std::vector<uint8_t>> Pop(std::chrono::milliseconds deadline = {}) {
    std::vector<uint8_t> frame;
    {
      std::unique_lock<std::mutex> lock(mu_);
      auto ready = [this] { return !frames_.empty() || closed_; };
      if (deadline.count() > 0) {
        if (!cv_not_empty_.wait_for(lock, deadline, ready)) {
          RecordDeadlineExceeded();
          return DeadlineExceededError("transport recv deadline exceeded");
        }
      } else {
        cv_not_empty_.wait(lock, ready);
      }
      if (frames_.empty()) {
        return TruncatedError("transport closed");
      }
      frame = std::move(frames_.front());
      frames_.pop_front();
      buffered_bytes_ -= frame.size();
    }
    cv_not_full_.notify_one();
    return frame;
  }

  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    cv_not_empty_.notify_all();
    cv_not_full_.notify_all();
  }

  size_t depth() const {
    std::lock_guard<std::mutex> lock(mu_);
    return frames_.size();
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_not_empty_;
  std::condition_variable cv_not_full_;
  std::deque<std::vector<uint8_t>> frames_;
  size_t buffered_bytes_ = 0;
  size_t max_frames_ = 0;  // 0 = unbounded
  size_t max_bytes_ = 0;   // 0 = unbounded
  bool closed_ = false;
};

}  // namespace internal

// In-memory, thread-safe message transport.
class LoopbackTransport final : public Transport {
 public:
  LoopbackTransport(std::shared_ptr<internal::FrameQueue> tx,
                    std::shared_ptr<internal::FrameQueue> rx,
                    TransportOptions options = {})
      : tx_(std::move(tx)), rx_(std::move(rx)), options_(options) {}

  ~LoopbackTransport() override { Close(); }

  Status Send(const std::vector<uint8_t>& frame) override {
    obs::Span span("transport.send");
    if (frame.size() > kMaxFrameBytes) {
      return LengthOverflowError("frame exceeds transport cap");
    }
    Status s = tx_->Push(frame, options_.send_deadline);
    if (s.ok()) {
      internal::RecordFrameSent(frame.size());
    }
    return s;
  }

  StatusOr<std::vector<uint8_t>> Receive() override {
    // "transport.recv" spans include the blocking wait for the peer, so the
    // harness's wall-time partition treats them as idle time, not compute.
    obs::Span span("transport.recv");
    auto frame = rx_->Pop(RecvDeadline());
    if (frame.ok()) {
      received_any_.store(true, std::memory_order_relaxed);
      internal::RecordFrameReceived(frame->size());
    }
    return frame;
  }

  void Close() override {
    tx_->Close();
    rx_->Close();
  }

 private:
  std::chrono::milliseconds RecvDeadline() const {
    if (!received_any_.load(std::memory_order_relaxed) &&
        options_.handshake_deadline.count() > 0) {
      return options_.handshake_deadline;
    }
    return options_.recv_deadline;
  }

  std::shared_ptr<internal::FrameQueue> tx_;
  std::shared_ptr<internal::FrameQueue> rx_;
  TransportOptions options_;
  std::atomic<bool> received_any_{false};
};

inline TransportPair MakeLoopbackPair(TransportOptions options = {}) {
  auto a = std::make_shared<internal::FrameQueue>(options.max_queue_frames,
                                                  options.max_queue_bytes);
  auto b = std::make_shared<internal::FrameQueue>(options.max_queue_frames,
                                                  options.max_queue_bytes);
  TransportPair pair;
  pair.left = std::make_unique<LoopbackTransport>(a, b, options);
  pair.right = std::make_unique<LoopbackTransport>(b, a, options);
  return pair;
}

// Length-prefixed frames over a full-duplex file descriptor (socketpair).
// This is the shape a networked deployment would use; the harness drives it
// from two threads to exercise real kernel buffering and partial reads.
//
// Shutdown discipline: Close() only shutdown(2)s the descriptor — it never
// close(2)s it while the object is alive. A concurrent ReadAll/WriteAll on
// another thread therefore always operates on a valid (if shut-down) fd;
// read() wakes with EOF and send() with EPIPE, and the descriptor number
// cannot be recycled out from under them. The fd is closed exactly once, in
// the destructor, when no concurrent user can exist.
class PipeTransport final : public Transport {
 public:
  explicit PipeTransport(int fd, TransportOptions options = {})
      : fd_(fd), options_(options) {
    // Non-blocking I/O with poll(2) is what makes deadlines sound: a
    // blocking send() of a chunk larger than the socket buffer would ignore
    // any deadline until the peer drained it. EAGAIN routes every wait
    // through WaitReady, which owns the deadline.
    const int flags = ::fcntl(fd_, F_GETFL, 0);
    if (flags >= 0) {
      ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK);
    }
  }

  PipeTransport(const PipeTransport&) = delete;
  PipeTransport& operator=(const PipeTransport&) = delete;

  ~PipeTransport() override {
    Close();
    if (fd_ >= 0) {
      ::close(fd_);
    }
  }

  Status Send(const std::vector<uint8_t>& frame) override {
    obs::Span span("transport.send");
    if (frame.size() > kMaxFrameBytes) {
      return LengthOverflowError("frame exceeds transport cap");
    }
    internal::CallDeadline deadline(
        internal::OptionBudget(options_.send_deadline));
    uint8_t prefix[4];
    const uint32_t len = static_cast<uint32_t>(frame.size());
    for (int i = 0; i < 4; i++) {
      prefix[i] = static_cast<uint8_t>(len >> (8 * i));
    }
    ZAATAR_RETURN_IF_ERROR(WriteAll(prefix, 4, deadline));
    ZAATAR_RETURN_IF_ERROR(WriteAll(frame.data(), frame.size(), deadline));
    internal::RecordFrameSent(frame.size());
    return Status::Ok();
  }

  StatusOr<std::vector<uint8_t>> Receive() override {
    obs::Span span("transport.recv");
    internal::CallDeadline deadline(
        internal::OptionBudget(RecvDeadlineBudget()));
    uint8_t prefix[4];
    ZAATAR_RETURN_IF_ERROR(
        ReadAll(prefix, 4, /*eof_ok_at_start=*/true, deadline));
    uint32_t len = 0;
    for (int i = 0; i < 4; i++) {
      len |= static_cast<uint32_t>(prefix[i]) << (8 * i);
    }
    // The length prefix is untrusted: cap it before allocating, reserve at
    // most a bounded slab up front, and grow only as bytes actually arrive —
    // a liar that promises gigabytes and delivers silence costs one bounded
    // allocation and then a recv deadline, not memory or a wedged thread.
    if (len > kMaxFrameBytes) {
      return LengthOverflowError("frame length prefix exceeds transport cap");
    }
    std::vector<uint8_t> frame;
    frame.reserve(std::min<size_t>(len, kMaxEagerReserveBytes));
    size_t received = 0;
    while (received < len) {
      const size_t chunk =
          std::min<size_t>(kTransportChunkBytes, len - received);
      frame.resize(received + chunk);
      ZAATAR_RETURN_IF_ERROR(ReadAll(frame.data() + received, chunk,
                                     /*eof_ok_at_start=*/false, deadline));
      received += chunk;
    }
    received_any_.store(true, std::memory_order_relaxed);
    internal::RecordFrameReceived(frame.size());
    return frame;
  }

  void Close() override {
    // shutdown(2), never close(2): see the class comment. Both a blocked
    // peer (other endpoint of the socketpair) and a blocked sibling thread
    // on this endpoint wake up with EOF/EPIPE.
    if (!shutdown_.exchange(true, std::memory_order_acq_rel)) {
      ::shutdown(fd_, SHUT_RDWR);
    }
  }

  // Creates a connected socketpair; left and right are the two endpoints.
  static StatusOr<TransportPair> CreatePair(TransportOptions options = {}) {
    int fds[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
      return MalformedError(std::string("socketpair failed: ") +
                            std::strerror(errno));
    }
    TransportPair pair;
    pair.left = std::make_unique<PipeTransport>(fds[0], options);
    pair.right = std::make_unique<PipeTransport>(fds[1], options);
    return pair;
  }

 private:
  std::chrono::milliseconds RecvDeadlineBudget() const {
    if (!received_any_.load(std::memory_order_relaxed) &&
        options_.handshake_deadline.count() > 0) {
      return options_.handshake_deadline;
    }
    return options_.recv_deadline;
  }

  bool ShutDown() const {
    return shutdown_.load(std::memory_order_acquire);
  }

  // Bounded wait for the descriptor to become readable/writable. Returns
  // kDeadlineExceeded when the deadline expires first. POLLERR/POLLHUP fall
  // through to the read/write call, which reports the precise error. Polls
  // before checking expiry, so a zero budget (deadline already expired)
  // still gets exactly one non-blocking poll — an already-ready descriptor
  // succeeds, an immediate-or-fail probe fails typed instead of blocking.
  Status WaitReady(short events, const internal::CallDeadline& deadline) {
    for (;;) {
      struct pollfd pfd;
      pfd.fd = fd_;
      pfd.events = events;
      pfd.revents = 0;
      int rc = ::poll(&pfd, 1, deadline.PollTimeoutMs());
      if (rc < 0) {
        if (errno == EINTR) {
          continue;
        }
        return TruncatedError(std::string("transport poll failed: ") +
                              std::strerror(errno));
      }
      if (rc == 0) {
        internal::RecordDeadlineExceeded();
        return DeadlineExceededError(events == POLLIN
                                         ? "transport recv deadline exceeded"
                                         : "transport send deadline exceeded");
      }
      return Status::Ok();
    }
  }

  Status WriteAll(const uint8_t* data, size_t n,
                  const internal::CallDeadline& deadline) {
    if (ShutDown()) {
      return TruncatedError("transport closed");
    }
    size_t sent = 0;
    while (sent < n) {
      const size_t chunk = std::min<size_t>(kTransportChunkBytes, n - sent);
      // MSG_NOSIGNAL: a peer that closed mid-frame yields EPIPE (a typed
      // error below), not a process-killing SIGPIPE.
      ssize_t w = ::send(fd_, data + sent, chunk, MSG_NOSIGNAL);
      if (w > 0) {
        sent += static_cast<size_t>(w);
        continue;
      }
      if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        ZAATAR_RETURN_IF_ERROR(WaitReady(POLLOUT, deadline));
        continue;
      }
      if (w < 0 && errno == EINTR) {
        continue;
      }
      return TruncatedError(std::string("transport write failed: ") +
                            std::strerror(errno));
    }
    return Status::Ok();
  }

  Status ReadAll(uint8_t* data, size_t n, bool eof_ok_at_start,
                 const internal::CallDeadline& deadline) {
    if (ShutDown()) {
      return TruncatedError("transport closed");
    }
    size_t got = 0;
    while (got < n) {
      ssize_t r = ::read(fd_, data + got, n - got);
      if (r > 0) {
        got += static_cast<size_t>(r);
        continue;
      }
      if (r == 0) {
        return TruncatedError(got == 0 && eof_ok_at_start
                                  ? "transport closed"
                                  : "transport closed mid-frame");
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        ZAATAR_RETURN_IF_ERROR(WaitReady(POLLIN, deadline));
        continue;
      }
      if (errno == EINTR) {
        continue;
      }
      return TruncatedError(std::string("transport read failed: ") +
                            std::strerror(errno));
    }
    return Status::Ok();
  }

  const int fd_;
  TransportOptions options_;
  std::atomic<bool> shutdown_{false};
  std::atomic<bool> received_any_{false};
};

// A bound, listening AF_UNIX stream socket — the accept side of a standing
// service (zaatar-serve). The descriptor is non-blocking so an event loop
// can register it with poll/epoll and drain the accept queue on readiness;
// accepted connections come back non-blocking too, ready to wrap in a
// PipeTransport or feed a framed connection buffer. Owns the fd and unlinks
// the socket path on destruction.
class UnixListener {
 public:
  UnixListener(UnixListener&& other) noexcept
      : fd_(other.fd_), path_(std::move(other.path_)) {
    other.fd_ = -1;
    other.path_.clear();
  }
  UnixListener& operator=(UnixListener&&) = delete;
  UnixListener(const UnixListener&) = delete;
  UnixListener& operator=(const UnixListener&) = delete;

  ~UnixListener() {
    if (fd_ >= 0) {
      ::close(fd_);
      ::unlink(path_.c_str());
    }
  }

  // Binds and listens at `path`, replacing any stale socket file (a prior
  // daemon that died without cleanup). Paths longer than sun_path are a
  // typed error, not silent truncation.
  static StatusOr<UnixListener> Bind(const std::string& path,
                                     int backlog = 64) {
    struct sockaddr_un addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
      return MalformedError("unix socket path empty or too long: " + path);
    }
    std::memcpy(addr.sun_path, path.data(), path.size());
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      return TruncatedError(std::string("socket failed: ") +
                            std::strerror(errno));
    }
    ::unlink(path.c_str());
    if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      Status s = TruncatedError(std::string("bind failed: ") +
                                std::strerror(errno));
      ::close(fd);
      return s;
    }
    if (::listen(fd, backlog) != 0) {
      Status s = TruncatedError(std::string("listen failed: ") +
                                std::strerror(errno));
      ::close(fd);
      ::unlink(path.c_str());
      return s;
    }
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags >= 0) {
      ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    }
    return UnixListener(fd, path);
  }

  // Drains one connection from the accept queue, or returns -1 when none is
  // pending (the readiness loop re-arms and waits) — that is flow control,
  // not an error. Accepted descriptors are returned non-blocking; the
  // caller owns them.
  StatusOr<int> Accept() {
    for (;;) {
      int conn = ::accept(fd_, nullptr, nullptr);
      if (conn >= 0) {
        const int flags = ::fcntl(conn, F_GETFL, 0);
        if (flags >= 0) {
          ::fcntl(conn, F_SETFL, flags | O_NONBLOCK);
        }
        return conn;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return -1;
      }
      if (errno == EINTR || errno == ECONNABORTED) {
        continue;
      }
      return TruncatedError(std::string("accept failed: ") +
                            std::strerror(errno));
    }
  }

  int fd() const { return fd_; }
  const std::string& path() const { return path_; }

 private:
  UnixListener(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}

  int fd_;
  std::string path_;
};

// Client-side dial: connects to a UnixListener's socket path and returns
// the connected descriptor (blocking connect — dialing a local daemon
// either succeeds immediately or fails with a typed error). The caller
// typically wraps it in a PipeTransport, which takes ownership and flips it
// non-blocking.
inline StatusOr<int> ConnectUnix(const std::string& path) {
  struct sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
    return MalformedError("unix socket path empty or too long: " + path);
  }
  std::memcpy(addr.sun_path, path.data(), path.size());
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return TruncatedError(std::string("socket failed: ") +
                          std::strerror(errno));
  }
  for (;;) {
    if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      return fd;
    }
    if (errno == EINTR) {
      continue;
    }
    Status s = TruncatedError(std::string("connect(") + path +
                              ") failed: " + std::strerror(errno));
    ::close(fd);
    return s;
  }
}

}  // namespace protocol
}  // namespace zaatar

#endif  // SRC_PROTOCOL_TRANSPORT_H_
