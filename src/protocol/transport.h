// Message transports for the two-party protocol. A Transport moves opaque
// frames (serialized messages) between the prover and verifier sessions;
// the sessions never see anything but bytes, so swapping the in-memory
// loopback for a real socket changes no protocol code.
//
// Two implementations:
//   - LoopbackTransport: a pair of mutex/condvar frame queues. Thread-safe,
//     so a prover thread and a verifier thread can drive a real two-party
//     exchange in one process (the TSan CI stage does exactly that).
//   - PipeTransport: length-prefixed frames over a socketpair(2). The frame
//     length is read as an untrusted u32 and validated against a hard cap
//     before any allocation, and the body is read in bounded chunks — the
//     same hostile-length discipline as ByteReader::GetLength.
//
// Receive() blocking on a closed/empty transport returns a typed kTruncated
// error ("connection closed"), which sessions surface instead of hanging.

#ifndef SRC_PROTOCOL_TRANSPORT_H_
#define SRC_PROTOCOL_TRANSPORT_H_

#include <unistd.h>

#include <sys/socket.h>
#include <sys/types.h>

#include <algorithm>
#include <cerrno>
#include <condition_variable>
#include <cstdint>
#include <cstring>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/util/status.h"

namespace zaatar {
namespace protocol {

// Hard cap on a single frame. The largest honest frame is a SetupMessage
// (query matrices dominate); 1 GiB leaves orders of magnitude of headroom
// while bounding what a hostile length prefix can make the receiver buffer.
inline constexpr uint64_t kMaxFrameBytes = 1ull << 30;

// Frames are read and written in bounded chunks so a large (but in-cap)
// frame never turns into one giant syscall, and a hostile length prefix on
// the read side fails fast once the sender stops producing bytes.
inline constexpr size_t kTransportChunkBytes = 1u << 20;

namespace internal {

// Shared per-frame accounting for every Transport implementation. Counters
// and the byte histogram land in whatever Metrics registry is installed on
// the calling thread (no-ops otherwise).
inline void RecordFrameSent(size_t bytes) {
  obs::MetricAdd("transport.frames_sent");
  obs::MetricObserve("transport.frame_bytes", bytes);
}

inline void RecordFrameReceived(size_t bytes) {
  obs::MetricAdd("transport.frames_received");
  obs::MetricObserve("transport.frame_bytes", bytes);
}

}  // namespace internal

class Transport {
 public:
  virtual ~Transport() = default;

  // Delivers one frame to the peer, preserving message boundaries.
  virtual Status Send(const std::vector<uint8_t>& frame) = 0;

  // Blocks until a frame arrives or the peer closes; kTruncated on close.
  virtual StatusOr<std::vector<uint8_t>> Receive() = 0;

  // Closes both directions. Any blocked or future Receive() on either side
  // fails with kTruncated; used to unwind a two-threaded exchange when one
  // side dies.
  virtual void Close() = 0;
};

// A matched pair of endpoints: left talks to right and vice versa.
struct TransportPair {
  std::unique_ptr<Transport> left;
  std::unique_ptr<Transport> right;
};

namespace internal {

// One direction of a loopback link.
class FrameQueue {
 public:
  Status Push(std::vector<uint8_t> frame) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_) {
        return TruncatedError("transport closed");
      }
      frames_.push_back(std::move(frame));
    }
    cv_.notify_one();
    return Status::Ok();
  }

  StatusOr<std::vector<uint8_t>> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return !frames_.empty() || closed_; });
    if (frames_.empty()) {
      return TruncatedError("transport closed");
    }
    std::vector<uint8_t> frame = std::move(frames_.front());
    frames_.pop_front();
    return frame;
  }

  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::vector<uint8_t>> frames_;
  bool closed_ = false;
};

}  // namespace internal

// In-memory, thread-safe message transport.
class LoopbackTransport final : public Transport {
 public:
  LoopbackTransport(std::shared_ptr<internal::FrameQueue> tx,
                    std::shared_ptr<internal::FrameQueue> rx)
      : tx_(std::move(tx)), rx_(std::move(rx)) {}

  ~LoopbackTransport() override { Close(); }

  Status Send(const std::vector<uint8_t>& frame) override {
    obs::Span span("transport.send");
    if (frame.size() > kMaxFrameBytes) {
      return LengthOverflowError("frame exceeds transport cap");
    }
    Status s = tx_->Push(frame);
    if (s.ok()) {
      internal::RecordFrameSent(frame.size());
    }
    return s;
  }

  StatusOr<std::vector<uint8_t>> Receive() override {
    // "transport.recv" spans include the blocking wait for the peer, so the
    // harness's wall-time partition treats them as idle time, not compute.
    obs::Span span("transport.recv");
    auto frame = rx_->Pop();
    if (frame.ok()) {
      internal::RecordFrameReceived(frame->size());
    }
    return frame;
  }

  void Close() override {
    tx_->Close();
    rx_->Close();
  }

 private:
  std::shared_ptr<internal::FrameQueue> tx_;
  std::shared_ptr<internal::FrameQueue> rx_;
};

inline TransportPair MakeLoopbackPair() {
  auto a = std::make_shared<internal::FrameQueue>();
  auto b = std::make_shared<internal::FrameQueue>();
  TransportPair pair;
  pair.left = std::make_unique<LoopbackTransport>(a, b);
  pair.right = std::make_unique<LoopbackTransport>(b, a);
  return pair;
}

// Length-prefixed frames over a full-duplex file descriptor (socketpair).
// This is the shape a networked deployment would use; the harness drives it
// from two threads to exercise real kernel buffering and partial reads.
class PipeTransport final : public Transport {
 public:
  explicit PipeTransport(int fd) : fd_(fd) {}

  PipeTransport(const PipeTransport&) = delete;
  PipeTransport& operator=(const PipeTransport&) = delete;

  ~PipeTransport() override { Close(); }

  Status Send(const std::vector<uint8_t>& frame) override {
    obs::Span span("transport.send");
    if (frame.size() > kMaxFrameBytes) {
      return LengthOverflowError("frame exceeds transport cap");
    }
    uint8_t prefix[4];
    const uint32_t len = static_cast<uint32_t>(frame.size());
    for (int i = 0; i < 4; i++) {
      prefix[i] = static_cast<uint8_t>(len >> (8 * i));
    }
    ZAATAR_RETURN_IF_ERROR(WriteAll(prefix, 4));
    ZAATAR_RETURN_IF_ERROR(WriteAll(frame.data(), frame.size()));
    internal::RecordFrameSent(frame.size());
    return Status::Ok();
  }

  StatusOr<std::vector<uint8_t>> Receive() override {
    obs::Span span("transport.recv");
    uint8_t prefix[4];
    ZAATAR_RETURN_IF_ERROR(ReadAll(prefix, 4, /*eof_ok_at_start=*/true));
    uint32_t len = 0;
    for (int i = 0; i < 4; i++) {
      len |= static_cast<uint32_t>(prefix[i]) << (8 * i);
    }
    // The length prefix is untrusted: cap it before allocating, then read
    // the body in bounded chunks so a liar that never delivers the promised
    // bytes blocks on the descriptor, not on a multi-GB allocation.
    if (len > kMaxFrameBytes) {
      return LengthOverflowError("frame length prefix exceeds transport cap");
    }
    std::vector<uint8_t> frame;
    size_t received = 0;
    while (received < len) {
      const size_t chunk =
          std::min<size_t>(kTransportChunkBytes, len - received);
      frame.resize(received + chunk);
      ZAATAR_RETURN_IF_ERROR(
          ReadAll(frame.data() + received, chunk, /*eof_ok_at_start=*/false));
      received += chunk;
    }
    internal::RecordFrameReceived(frame.size());
    return frame;
  }

  void Close() override {
    if (fd_ >= 0) {
      // Shutdown first so a peer blocked in read() on the other endpoint of
      // a socketpair wakes up even while it still holds its own fd open.
      ::shutdown(fd_, SHUT_RDWR);
      ::close(fd_);
      fd_ = -1;
    }
  }

  // Creates a connected socketpair; left and right are the two endpoints.
  static StatusOr<TransportPair> CreatePair() {
    int fds[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
      return MalformedError(std::string("socketpair failed: ") +
                            std::strerror(errno));
    }
    TransportPair pair;
    pair.left = std::make_unique<PipeTransport>(fds[0]);
    pair.right = std::make_unique<PipeTransport>(fds[1]);
    return pair;
  }

 private:
  Status WriteAll(const uint8_t* data, size_t n) {
    if (fd_ < 0) {
      return TruncatedError("transport closed");
    }
    size_t sent = 0;
    while (sent < n) {
      const size_t chunk = std::min<size_t>(kTransportChunkBytes, n - sent);
      // MSG_NOSIGNAL: a peer that closed mid-frame yields EPIPE (a typed
      // error below), not a process-killing SIGPIPE.
      ssize_t w = ::send(fd_, data + sent, chunk, MSG_NOSIGNAL);
      if (w < 0) {
        if (errno == EINTR) {
          continue;
        }
        return TruncatedError(std::string("transport write failed: ") +
                              std::strerror(errno));
      }
      sent += static_cast<size_t>(w);
    }
    return Status::Ok();
  }

  Status ReadAll(uint8_t* data, size_t n, bool eof_ok_at_start) {
    if (fd_ < 0) {
      return TruncatedError("transport closed");
    }
    size_t got = 0;
    while (got < n) {
      ssize_t r = ::read(fd_, data + got, n - got);
      if (r < 0) {
        if (errno == EINTR) {
          continue;
        }
        return TruncatedError(std::string("transport read failed: ") +
                              std::strerror(errno));
      }
      if (r == 0) {
        return TruncatedError(got == 0 && eof_ok_at_start
                                  ? "transport closed"
                                  : "transport closed mid-frame");
      }
      got += static_cast<size_t>(r);
    }
    return Status::Ok();
  }

  int fd_;
};

}  // namespace protocol
}  // namespace zaatar

#endif  // SRC_PROTOCOL_TRANSPORT_H_
