// ProverSession: the prover's side of the batched argument as a message-
// driven state machine.
//
//   Setup:    ReceiveSetup/IngestSetup — decode the SetupMessage, build the
//             ProverContext.                                  -> Commit
//   Commit:   Commit(vectors) — homomorphic commitments for the next
//             instance.                                       -> Decommit
//   Decommit: Decommit() — answer the multidecommit + consistency queries,
//             frame the ProofMessage.                         -> Decide
//   Decide:   ReceiveVerdict/IngestVerdict — the verifier's typed verdict
//             for this instance.                              -> Commit
//
// Driving the machine out of order yields a typed kPhaseViolation Status.
//
// TRUST BOUNDARY INVARIANT: this header must not include (directly or
// transitively) src/argument/argument.h or anything else defining the
// verifier's secrets — the session is reconstructed purely from SetupMessage
// bytes and is incapable of holding the ElGamal secret key, the plaintext r,
// or the alphas. tests/protocol_isolation_test.cc enforces this.

#ifndef SRC_PROTOCOL_PROVER_SESSION_H_
#define SRC_PROTOCOL_PROVER_SESSION_H_

#include <array>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/argument/verdict.h"
#include "src/commit/commitment.h"
#include "src/obs/trace.h"
#include "src/protocol/messages.h"
#include "src/protocol/phase.h"
#include "src/protocol/prover_context.h"
#include "src/protocol/transport.h"
#include "src/util/status.h"

namespace zaatar {
namespace protocol {

template <typename F>
class ProverSession {
 public:
  // ----- Setup phase -----

  Status IngestSetup(const std::vector<uint8_t>& bytes) {
    if (phase_ != SessionPhase::kSetup) {
      return WrongPhase("IngestSetup", SessionPhase::kSetup, phase_);
    }
    // Decoding the SetupMessage is the prover's largest non-crypto cost for
    // big batches; give it its own span so the wall-time partition holds.
    obs::Span span("prover.ingest_setup");
    ZAATAR_ASSIGN_OR_RETURN(ctx_, ProverContext<F>::FromBytes(bytes));
    phase_ = SessionPhase::kCommit;
    return Status::Ok();
  }

  Status ReceiveSetup(Transport& transport) {
    if (phase_ != SessionPhase::kSetup) {
      return WrongPhase("ReceiveSetup", SessionPhase::kSetup, phase_);
    }
    ZAATAR_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes, transport.Receive());
    return IngestSetup(bytes);
  }

  // Positions the session at `index` instead of instance 0, for a
  // replacement prover resuming a batch after its predecessor's connection
  // died (the verifier's RetryingSession replays from the first undecided
  // instance). Refused mid-instance: resuming is a between-instances event.
  Status StartAtInstance(uint32_t index) {
    if (phase_ == SessionPhase::kDecommit || phase_ == SessionPhase::kDecide) {
      return PhaseViolationError(
          "StartAtInstance: instance " + std::to_string(next_instance_) +
          " is still in flight");
    }
    next_instance_ = index;
    return Status::Ok();
  }

  // ----- Commit phase -----

  // Computes the homomorphic commitments for the next instance. The pointed-
  // to vectors must stay alive until Decommit() — the responses are computed
  // from the same vectors.
  Status Commit(const std::array<const std::vector<F>*, 2>& vectors,
                size_t workers = 1) {
    if (phase_ != SessionPhase::kCommit) {
      return WrongPhase("Commit", SessionPhase::kCommit, phase_);
    }
    ZAATAR_RETURN_IF_ERROR(ctx_.ValidateVectors(vectors));
    obs::Span span("prover.commit");
    pending_ = ProofMessage<F>{};
    pending_.instance_index = next_instance_;
    for (size_t o = 0; o < 2; o++) {
      ZAATAR_ASSIGN_OR_RETURN(
          pending_.commitments[o],
          LinearCommitment<F>::Commit(*vectors[o], ctx_.oracles[o].enc_r,
                                      workers));
    }
    pending_vectors_ = vectors;
    phase_ = SessionPhase::kDecommit;
    return Status::Ok();
  }

  // ----- Decommit phase -----

  // Answers the queries for the committed instance and returns the framed
  // ProofMessage bytes.
  StatusOr<std::vector<uint8_t>> Decommit() {
    if (phase_ != SessionPhase::kDecommit) {
      return WrongPhase("Decommit", SessionPhase::kDecommit, phase_);
    }
    obs::Span span("prover.answer");
    for (size_t o = 0; o < 2; o++) {
      OracleProofPart<F> part;
      part.commitment = pending_.commitments[o];
      ZAATAR_RETURN_IF_ERROR(
          LinearCommitment<F>::Answer(*pending_vectors_[o],
                                      ctx_.oracles[o].queries,
                                      ctx_.oracles[o].t, &part));
      pending_.responses[o] = std::move(part.responses);
      pending_.t_responses[o] = part.t_response;
    }
    phase_ = SessionPhase::kDecide;
    return pending_.Serialize();
  }

  // Commit + Decommit + send in one step; returns the proof frame size.
  StatusOr<size_t> ProveInstance(
      Transport& transport,
      const std::array<const std::vector<F>*, 2>& vectors,
      size_t workers = 1) {
    ZAATAR_RETURN_IF_ERROR(Commit(vectors, workers));
    ZAATAR_ASSIGN_OR_RETURN(std::vector<uint8_t> frame, Decommit());
    ZAATAR_RETURN_IF_ERROR(transport.Send(frame));
    return frame.size();
  }

  // ----- Decide phase -----

  // Ingests the verifier's verdict for the in-flight instance and advances
  // to the next instance's Commit phase.
  StatusOr<VerifyInstanceResult> IngestVerdict(
      const std::vector<uint8_t>& bytes) {
    if (phase_ != SessionPhase::kDecide) {
      return WrongPhase("IngestVerdict", SessionPhase::kDecide, phase_);
    }
    ZAATAR_ASSIGN_OR_RETURN(VerdictMessage msg,
                            VerdictMessage::Deserialize(bytes));
    if (msg.instance_index != next_instance_) {
      return MalformedError(
          "verdict for instance " + std::to_string(msg.instance_index) +
          ", expected " + std::to_string(next_instance_));
    }
    next_instance_++;
    pending_vectors_ = {};
    phase_ = SessionPhase::kCommit;
    verdicts_.push_back(msg.ToResult());
    return verdicts_.back();
  }

  StatusOr<VerifyInstanceResult> ReceiveVerdict(Transport& transport) {
    if (phase_ != SessionPhase::kDecide) {
      return WrongPhase("ReceiveVerdict", SessionPhase::kDecide, phase_);
    }
    ZAATAR_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes, transport.Receive());
    return IngestVerdict(bytes);
  }

  // ----- Accessors -----

  SessionPhase phase() const { return phase_; }
  const ProverContext<F>& context() const { return ctx_; }
  uint32_t next_instance() const { return next_instance_; }
  const std::vector<VerifyInstanceResult>& verdicts() const {
    return verdicts_;
  }

 private:
  SessionPhase phase_ = SessionPhase::kSetup;
  ProverContext<F> ctx_;
  ProofMessage<F> pending_;
  std::array<const std::vector<F>*, 2> pending_vectors_{};
  uint32_t next_instance_ = 0;
  std::vector<VerifyInstanceResult> verdicts_;
};

}  // namespace protocol
}  // namespace zaatar

#endif  // SRC_PROTOCOL_PROVER_SESSION_H_
