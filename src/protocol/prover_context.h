// ProverContext: everything the prover knows about a batch, reconstructed
// purely from SetupMessage bytes. This is the prover's half of the old
// monolithic VerifierSetup — the ElGamal public key plus, per oracle, the
// encrypted commitment vector, the plaintext multidecommit queries, and the
// consistency vector t.
//
// The verifier's secrets (secret key, plaintext r, alphas) are not fields of
// this struct and no constructor accepts them; a prover built on top of
// ProverContext is incapable of holding them by construction
// (tests/protocol_isolation_test.cc pins this down).

#ifndef SRC_PROTOCOL_PROVER_CONTEXT_H_
#define SRC_PROTOCOL_PROVER_CONTEXT_H_

#include <array>
#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "src/commit/commitment.h"
#include "src/crypto/elgamal.h"
#include "src/protocol/messages.h"
#include "src/util/status.h"

namespace zaatar {

template <typename F>
struct ProverContext {
  using EG = ElGamal<F>;

  typename EG::PublicKey pk;
  std::array<ProverOracleContext<F>, 2> oracles;

  // Builds the context from a decoded SetupMessage, validating the
  // cross-field invariants the decoder cannot check structurally: every
  // query row and the t vector must match the oracle length.
  static StatusOr<ProverContext> FromMessage(protocol::SetupMessage<F> msg) {
    ProverContext ctx;
    ctx.pk = msg.pk;
    for (size_t o = 0; o < 2; o++) {
      auto& oracle = msg.oracles[o];
      const size_t len = oracle.enc_r.size();
      for (const auto& q : oracle.queries) {
        if (q.size() != len) {
          return MalformedError("oracle " + std::to_string(o) +
                                " query length disagrees with Enc(r) length");
        }
      }
      if (oracle.t.size() != len) {
        return MalformedError("oracle " + std::to_string(o) +
                              " consistency vector length mismatch");
      }
      ctx.oracles[o].enc_r = std::move(oracle.enc_r);
      ctx.oracles[o].queries = std::move(oracle.queries);
      ctx.oracles[o].t = std::move(oracle.t);
    }
    return ctx;
  }

  // The full untrusted ingest path: raw bytes -> validated context.
  static StatusOr<ProverContext> FromBytes(const std::vector<uint8_t>& bytes) {
    ZAATAR_ASSIGN_OR_RETURN(protocol::SetupMessage<F> msg,
                            protocol::SetupMessage<F>::Deserialize(bytes));
    return FromMessage(std::move(msg));
  }

  // Shape check for a pair of proof vectors against this context. Generic
  // (adapter-independent): each vector must match its oracle length.
  Status ValidateVectors(
      const std::array<const std::vector<F>*, 2>& vectors) const {
    for (size_t o = 0; o < 2; o++) {
      if (vectors[o] == nullptr) {
        return MalformedError("oracle " + std::to_string(o) +
                              " proof vector missing");
      }
      if (vectors[o]->size() != oracles[o].oracle_length()) {
        return MalformedError(
            "oracle " + std::to_string(o) + " proof vector length " +
            std::to_string(vectors[o]->size()) + " != oracle length " +
            std::to_string(oracles[o].oracle_length()));
      }
    }
    return Status::Ok();
  }
};

}  // namespace zaatar

#endif  // SRC_PROTOCOL_PROVER_CONTEXT_H_
