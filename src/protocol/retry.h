// Recovery semantics for the verifier's side of the channel: capped
// exponential backoff with deterministic seeded jitter, and a
// RetryingSession wrapper that survives transport failures by reconnecting
// through a TransportFactory and replaying the in-flight instance.
//
// The security-critical line (DESIGN.md §13): a *protocol* outcome is
// final, a *transport* failure is retryable. A reject verdict, a phase
// violation, or malformed proof bytes say something about the peer's
// honesty or a local bug — retrying them would let a malicious prover farm
// unlimited fresh attempts at the same instance. A deadline, a dead
// connection, or a desynchronized byte stream say nothing about the proof —
// IsTransportFailure (transport.h) is the single classifier, and only those
// statuses ever reach the backoff loop. The verifier's secrets, queries,
// and already-recorded verdicts live in the wrapped VerifierSession and
// survive every reconnect; only the channel is replaced.

#ifndef SRC_PROTOCOL_RETRY_H_
#define SRC_PROTOCOL_RETRY_H_

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/crypto/prg.h"
#include "src/obs/metrics.h"
#include "src/protocol/backoff.h"
#include "src/protocol/transport.h"
#include "src/protocol/verifier_session.h"
#include "src/util/status.h"

namespace zaatar {
namespace protocol {

// BackoffPolicy / BackoffSchedule moved to backoff.h (prover-side code
// needs the schedule without this header's verifier machinery); included
// above so existing users of retry.h see the same names.

// Produces a fresh connected Transport whose peer, after re-receiving the
// batch setup, will resume proving at `next_instance`. Failures are typed;
// a factory that can no longer connect returns a transport-class Status
// (kTruncated) so the retry loop counts it against the budget.
using TransportFactory =
    std::function<StatusOr<std::unique_ptr<Transport>>(uint32_t next_instance)>;

// Wraps a VerifierSession with reconnect-and-replay recovery. The session's
// protocol state (secrets, recorded verdicts, instance cursor) is never
// reset — only the transport is torn down and rebuilt. DecideNext retries a
// transport-failed instance up to policy.max_retries times with backoff;
// anything else (including every non-accept *verdict*, which arrives as a
// value, not a Status) passes straight through exactly once.
template <typename F, typename Adapter>
class RetryingSession {
 public:
  using Sleeper = std::function<void(std::chrono::milliseconds)>;

  RetryingSession(VerifierSession<F, Adapter> session, TransportFactory factory,
                  BackoffPolicy policy = {}, Sleeper sleeper = {})
      : session_(std::move(session)),
        factory_(std::move(factory)),
        policy_(policy),
        sleeper_(std::move(sleeper)) {}

  // Connects (if needed) and sends/resends the batch setup to the peer.
  // Idempotent once connected.
  Status EnsureConnected() {
    if (transport_ != nullptr) {
      return Status::Ok();
    }
    const uint32_t next =
        static_cast<uint32_t>(session_.results().size());
    ZAATAR_ASSIGN_OR_RETURN(transport_, factory_(next));
    if (transport_ == nullptr) {
      return TruncatedError("transport factory returned no transport");
    }
    connections_++;
    obs::MetricAdd("transport.connections");
    auto sent = session_.ResendSetup(*transport_);
    if (!sent.ok()) {
      Disconnect();
      return sent.status();
    }
    return Status::Ok();
  }

  // Closes and drops the current transport; the next DecideNext reconnects.
  void Disconnect() {
    if (transport_ != nullptr) {
      transport_->Close();
      transport_.reset();
    }
  }

  // One instance end to end, with recovery. Returns the typed verdict (which
  // may be a reject — final, never retried here) or, after the retry budget
  // is exhausted, the last transport-class Status. Protocol-level statuses
  // (phase violations) return immediately.
  StatusOr<VerifyInstanceResult> DecideNext(const std::vector<F>& bound) {
    const size_t index = session_.results().size();
    BackoffSchedule schedule(policy_);
    uint32_t attempt = 0;
    for (;;) {
      Status failure = Status::Ok();
      if (Status conn = EnsureConnected(); !conn.ok()) {
        if (!IsTransportFailure(conn)) {
          return conn;
        }
        failure = conn;
      } else {
        auto result = session_.DecideNext(*transport_, bound);
        if (result.ok()) {
          return *result;
        }
        if (session_.results().size() > index) {
          // The proof arrived and was decided, but the verdict frame never
          // reached the peer. The decision is made and stands; reconnect
          // lazily before the next instance rather than re-deciding.
          Disconnect();
          return session_.results().back();
        }
        if (!IsTransportFailure(result.status())) {
          return result.status();
        }
        failure = result.status();
      }
      Disconnect();
      if (attempt >= policy_.max_retries) {
        return failure;
      }
      attempt++;
      total_retries_++;
      obs::MetricAdd("transport.retries");
      auto delay = schedule.NextDelay();
      if (sleeper_) {
        sleeper_(delay);
      } else if (delay.count() > 0) {
        std::this_thread::sleep_for(delay);
      }
    }
  }

  bool connected() const { return transport_ != nullptr; }
  uint64_t total_retries() const { return total_retries_; }
  uint64_t connections() const { return connections_; }
  VerifierSession<F, Adapter>& session() { return session_; }
  const VerifierSession<F, Adapter>& session() const { return session_; }

 private:
  VerifierSession<F, Adapter> session_;
  TransportFactory factory_;
  BackoffPolicy policy_;
  Sleeper sleeper_;
  std::unique_ptr<Transport> transport_;
  uint64_t total_retries_ = 0;
  uint64_t connections_ = 0;
};

}  // namespace protocol
}  // namespace zaatar

#endif  // SRC_PROTOCOL_RETRY_H_
