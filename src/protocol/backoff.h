// Capped exponential backoff with deterministic seeded jitter. Split out of
// retry.h so PROVER-side code (e.g. the serve client, which backs off on a
// typed kResourceExhausted rejection) can use the schedule without pulling
// in retry.h's verifier-session machinery — retry.h includes
// verifier_session.h, which carries the verifier's secrets, and the trust
// boundary (tests/protocol_isolation_test.cc) forbids prover code from
// touching that.

#ifndef SRC_PROTOCOL_BACKOFF_H_
#define SRC_PROTOCOL_BACKOFF_H_

#include <algorithm>
#include <chrono>
#include <cstdint>

#include "src/crypto/prg.h"

namespace zaatar {
namespace protocol {

// Capped exponential backoff: retry i (0-based) waits
//   min(cap, initial * multiplier^i) * U[0.5, 1.0)
// where U is drawn from a Prg seeded with jitter_seed — the schedule is
// fully deterministic given the seed (testable, reproducible chaos runs)
// while still decorrelating real fleets that seed from entropy.
struct BackoffPolicy {
  uint32_t max_retries = 3;
  std::chrono::milliseconds initial{10};
  double multiplier = 2.0;
  std::chrono::milliseconds cap{1000};
  uint64_t jitter_seed = 0;
};

class BackoffSchedule {
 public:
  explicit BackoffSchedule(const BackoffPolicy& policy)
      : policy_(policy), prg_(policy.jitter_seed) {}

  // Delay before the next retry; successive calls walk the schedule.
  std::chrono::milliseconds NextDelay() {
    double base = static_cast<double>(policy_.initial.count());
    for (uint32_t i = 0; i < attempt_; i++) {
      base *= policy_.multiplier;
      if (base >= static_cast<double>(policy_.cap.count())) {
        break;
      }
    }
    int64_t capped = std::min<int64_t>(static_cast<int64_t>(base),
                                       policy_.cap.count());
    attempt_++;
    if (capped <= 0) {
      return std::chrono::milliseconds(0);
    }
    // Uniform over {⌊capped/2⌋, ..., capped-1}: the floored integer image of
    // the documented half-open multiplicative jitter U[0.5, 1.0) — `capped`
    // itself is never drawn, and odd bases are no longer biased high
    // (capped=3 draws {1, 2}, not {2, 3}). Clamped to >= 1ms so a positive
    // base can never collapse a retry storm into a busy loop.
    int64_t half = capped / 2;
    int64_t span = capped - half;  // >= 1 for capped >= 1
    int64_t jittered =
        half +
        static_cast<int64_t>(prg_.NextBounded(static_cast<uint64_t>(span)));
    return std::chrono::milliseconds(std::max<int64_t>(jittered, 1));
  }

  uint32_t attempts() const { return attempt_; }

 private:
  BackoffPolicy policy_;
  Prg prg_;
  uint32_t attempt_ = 0;
};

}  // namespace protocol
}  // namespace zaatar

#endif  // SRC_PROTOCOL_BACKOFF_H_
