// VerifierSession: the verifier's side of the batched argument as a message-
// driven state machine.
//
//   Setup:    EmitSetup/SendSetup — frame the batch SetupMessage (public
//             key, Enc(r), queries, t).                       -> Commit
//   Commit:   HandleProof — receive the next instance's ProofMessage; the
//             decoded commitments move the machine through Decommit
//             internally, the cryptographic checks and the PCP decision run
//             on the decoded responses.                       -> Decide
//   Decide:   EmitVerdict/SendVerdict — the typed verdict frame.
//                                                             -> Commit
//
// Driving the machine out of order yields a typed kPhaseViolation Status.
// Hostile proof bytes never error the session: a decode failure or an
// instance-index mismatch consumes the instance slot with a kMalformed
// verdict, preserving the PR-1 batch-isolation contract at the byte level.
//
// This header owns the verifier's secrets (via Argument::VerifierSetup) and
// must therefore never be included by prover-side code — the reverse
// direction of the isolation that tests/protocol_isolation_test.cc enforces
// for ProverSession.

#ifndef SRC_PROTOCOL_VERIFIER_SESSION_H_
#define SRC_PROTOCOL_VERIFIER_SESSION_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/argument/argument.h"
#include "src/argument/verdict.h"
#include "src/crypto/prg.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/protocol/messages.h"
#include "src/protocol/phase.h"
#include "src/protocol/transport.h"
#include "src/util/status.h"

namespace zaatar {
namespace protocol {

template <typename F, typename Adapter>
class VerifierSession {
 public:
  using Arg = Argument<F, Adapter>;

  // Wraps Argument::Setup: generates keys, Enc(r), alphas, and t from the
  // given queries. The session owns the resulting secrets for its lifetime.
  VerifierSession(typename Adapter::Queries queries, Prg& prg,
                  double query_generation_seconds = 0)
      : setup_(std::make_shared<const typename Arg::VerifierSetup>(
            Arg::Setup(std::move(queries), prg, query_generation_seconds))) {}

  // Adopts an already-built batch setup instead of generating one — the
  // amortization path: a serve daemon builds the per-Ψ setup once and every
  // session for that Ψ shares it (VerifierSetup is read-only after
  // construction, so concurrent sessions on worker threads are safe). The
  // session starts in kCommit: the cached setup frame was (or will be)
  // delivered to the peer out of band by the owner of the cache, so this
  // session never emits it and setup_bytes_sent() stays 0.
  explicit VerifierSession(
      std::shared_ptr<const typename Arg::VerifierSetup> setup)
      : setup_(std::move(setup)), phase_(SessionPhase::kCommit) {}

  // ----- Setup phase -----

  StatusOr<std::vector<uint8_t>> EmitSetup() {
    if (phase_ != SessionPhase::kSetup) {
      return WrongPhase("EmitSetup", SessionPhase::kSetup, phase_);
    }
    std::vector<uint8_t> bytes = setup_->ToSetupMessage().Serialize();
    setup_bytes_ = bytes.size();
    phase_ = SessionPhase::kCommit;
    return bytes;
  }

  StatusOr<size_t> SendSetup(Transport& transport) {
    ZAATAR_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes, EmitSetup());
    ZAATAR_RETURN_IF_ERROR(transport.Send(bytes));
    return bytes.size();
  }

  // Sends the batch setup to a FRESH peer after a reconnect, without
  // touching the session's protocol state: in kSetup it is a plain
  // SendSetup; mid-batch (kCommit) it re-frames the identical SetupMessage
  // so a replacement prover can rebuild its context and resume. Mid-instance
  // phases refuse — a reconnect must happen between instances.
  StatusOr<size_t> ResendSetup(Transport& transport) {
    if (phase_ == SessionPhase::kSetup) {
      return SendSetup(transport);
    }
    if (phase_ != SessionPhase::kCommit) {
      return WrongPhase("ResendSetup", SessionPhase::kCommit, phase_);
    }
    std::vector<uint8_t> bytes = setup_->ToSetupMessage().Serialize();
    ZAATAR_RETURN_IF_ERROR(transport.Send(bytes));
    return bytes.size();
  }

  // ----- Commit + Decommit phases -----

  // Ingests one instance's proof bytes and decides. The commitments and the
  // responses arrive in a single ProofMessage, so the Commit -> Decommit
  // transition happens internally once the frame decodes; both failures
  // (undecodable bytes, wrong instance index) are per-instance kMalformed
  // verdicts, not session errors.
  StatusOr<VerifyInstanceResult> HandleProof(
      const std::vector<uint8_t>& proof_bytes,
      const std::vector<F>& bound_values) {
    if (phase_ != SessionPhase::kCommit) {
      return WrongPhase("HandleProof", SessionPhase::kCommit, phase_);
    }
    obs::Span span("verifier.verify");
    VerifyInstanceResult result;
    auto decoded = ProofMessage<F>::Deserialize(proof_bytes);
    if (!decoded.ok()) {
      result = VerifyInstanceResult::Reject(VerifyVerdict::kMalformed,
                                            decoded.status().ToString());
    } else if (decoded->instance_index != results_.size()) {
      result = VerifyInstanceResult::Reject(
          VerifyVerdict::kMalformed,
          "proof for instance " + std::to_string(decoded->instance_index) +
              ", expected " + std::to_string(results_.size()));
    } else {
      // Frame decoded: the commitment material is in hand (Decommit), run
      // the consistency checks and the PCP decision procedure.
      phase_ = SessionPhase::kDecommit;
      typename Arg::InstanceProof proof;
      for (size_t o = 0; o < 2; o++) {
        proof.parts[o].commitment = decoded->commitments[o];
        proof.parts[o].responses = std::move(decoded->responses[o]);
        proof.parts[o].t_response = decoded->t_responses[o];
      }
      result = Arg::VerifyInstanceDetailed(*setup_, proof, bound_values);
    }
    if (obs::Metrics* m = obs::ThreadMetrics()) {
      m->Add(std::string("verdict.") + VerifyVerdictName(result.verdict));
    }
    proof_bytes_ += proof_bytes.size();
    results_.push_back(result);
    phase_ = SessionPhase::kDecide;
    return result;
  }

  // Consumes the next instance slot with a kTransportFailed verdict: the
  // channel died (and the caller's retry budget ran out) before this
  // instance's proof could arrive, so the batch degrades by one undecided
  // instance instead of aborting. Keeps the session's instance cursor in
  // step with the caller's bookkeeping — the next proof the verifier will
  // accept is for the instance after the skipped one.
  StatusOr<VerifyInstanceResult> SkipInstanceTransportFailed(
      std::string detail) {
    if (phase_ != SessionPhase::kCommit) {
      return WrongPhase("SkipInstanceTransportFailed", SessionPhase::kCommit,
                        phase_);
    }
    VerifyInstanceResult result = VerifyInstanceResult::Reject(
        VerifyVerdict::kTransportFailed, std::move(detail));
    if (obs::Metrics* m = obs::ThreadMetrics()) {
      m->Add(std::string("verdict.") + VerifyVerdictName(result.verdict));
    }
    results_.push_back(result);
    return result;
  }

  // ----- Decide phase -----

  StatusOr<std::vector<uint8_t>> EmitVerdict() {
    if (phase_ != SessionPhase::kDecide) {
      return WrongPhase("EmitVerdict", SessionPhase::kDecide, phase_);
    }
    VerdictMessage msg = VerdictMessage::FromResult(
        static_cast<uint32_t>(results_.size() - 1), results_.back());
    phase_ = SessionPhase::kCommit;
    return msg.Serialize();
  }

  Status SendVerdict(Transport& transport) {
    ZAATAR_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes, EmitVerdict());
    return transport.Send(bytes);
  }

  // Receive proof, decide, send verdict — one instance end to end.
  StatusOr<VerifyInstanceResult> DecideNext(
      Transport& transport, const std::vector<F>& bound_values) {
    if (phase_ != SessionPhase::kCommit) {
      return WrongPhase("DecideNext", SessionPhase::kCommit, phase_);
    }
    ZAATAR_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes, transport.Receive());
    ZAATAR_ASSIGN_OR_RETURN(VerifyInstanceResult result,
                            HandleProof(bytes, bound_values));
    ZAATAR_RETURN_IF_ERROR(SendVerdict(transport));
    return result;
  }

  // ----- Accessors -----

  SessionPhase phase() const { return phase_; }
  const typename Arg::VerifierSetup& setup() const { return *setup_; }
  // The shared handle, for callers that cache/refcount the batch setup.
  const std::shared_ptr<const typename Arg::VerifierSetup>& shared_setup()
      const {
    return setup_;
  }
  const std::vector<VerifyInstanceResult>& results() const {
    return results_;
  }
  size_t setup_bytes_sent() const { return setup_bytes_; }
  size_t proof_bytes_received() const { return proof_bytes_; }

 private:
  // Shared, immutable after construction: many concurrent sessions (one per
  // serve-daemon client proving the same Ψ) read one setup.
  std::shared_ptr<const typename Arg::VerifierSetup> setup_;
  SessionPhase phase_ = SessionPhase::kSetup;
  std::vector<VerifyInstanceResult> results_;
  size_t setup_bytes_ = 0;
  size_t proof_bytes_ = 0;
};

}  // namespace protocol
}  // namespace zaatar

#endif  // SRC_PROTOCOL_VERIFIER_SESSION_H_
