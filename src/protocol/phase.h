// The session phase lattice shared by ProverSession and VerifierSession:
//
//   Setup ──► Commit ──► Decommit ──► Decide ──┐
//               ▲                              │
//               └──────── next instance ◄──────┘
//
// Setup happens once per batch; Commit/Decommit/Decide cycle once per
// instance. Each session method checks the current phase first and returns a
// typed kPhaseViolation Status when driven out of order — a wrong-phase call
// is a sequencing bug (or a peer violating the protocol), never a verdict,
// so it must not be confusable with a reject.

#ifndef SRC_PROTOCOL_PHASE_H_
#define SRC_PROTOCOL_PHASE_H_

#include <string>

#include "src/util/status.h"

namespace zaatar {
namespace protocol {

enum class SessionPhase {
  kSetup = 0,  // batch setup not yet exchanged
  kCommit,     // awaiting/producing the instance commitment
  kDecommit,   // awaiting/producing the query responses
  kDecide,     // awaiting/producing the verdict
};

inline const char* SessionPhaseName(SessionPhase p) {
  switch (p) {
    case SessionPhase::kSetup:
      return "SETUP";
    case SessionPhase::kCommit:
      return "COMMIT";
    case SessionPhase::kDecommit:
      return "DECOMMIT";
    case SessionPhase::kDecide:
      return "DECIDE";
  }
  return "UNKNOWN";
}

// Typed error for an operation invoked outside its phase.
inline Status WrongPhase(const char* op, SessionPhase required,
                         SessionPhase actual) {
  return PhaseViolationError(std::string(op) + " requires phase " +
                             SessionPhaseName(required) + ", session is in " +
                             SessionPhaseName(actual));
}

}  // namespace protocol
}  // namespace zaatar

#endif  // SRC_PROTOCOL_PHASE_H_
