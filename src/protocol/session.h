// Umbrella header for the two-party session layer: both state machines plus
// the transports they run over. Verifier-side code includes this; prover-only
// code should include prover_session.h directly to stay on its side of the
// trust boundary (see protocol_isolation_test.cc).

#ifndef SRC_PROTOCOL_SESSION_H_
#define SRC_PROTOCOL_SESSION_H_

#include "src/protocol/prover_session.h"
#include "src/protocol/retry.h"
#include "src/protocol/transport.h"
#include "src/protocol/verifier_session.h"

#endif  // SRC_PROTOCOL_SESSION_H_
