// The three messages of the two-party argument protocol (paper Figure 2),
// as they cross the prover/verifier trust boundary:
//
//   SetupMessage   V -> P, once per batch: the ElGamal public key, and per
//                  oracle the encrypted commitment vector Enc(r), the
//                  plaintext multidecommit queries, and the consistency
//                  vector t. The verifier's secrets — the secret key, the
//                  plaintext r, the alphas — are not representable here.
//   ProofMessage   P -> V, once per instance: the homomorphic commitments
//                  and the query/consistency responses, tagged with the
//                  instance index so a reordered or replayed proof is caught
//                  by the session layer.
//   VerdictMessage V -> P, once per instance: the PR-1 verdict taxonomy
//                  (ACCEPT / MALFORMED / REJECT_COMMIT / REJECT_PCP) plus a
//                  bounded diagnostic string.
//
// Deserialize() is the trust boundary: bytes from the peer are arbitrary.
// All decoders return StatusOr instead of throwing, validate every length
// prefix against both the hard element cap and the bytes actually present
// before allocating, range-check every field/group element (< modulus), and
// reject trailing bytes — the same hardening regime as src/argument/wire.h.
//
// Unlike wire.h's seed-based SetupMessage (which ships a query seed and lets
// the prover re-derive the queries), this SetupMessage carries the full
// query matrices: the session prover is reconstructed *purely* from these
// bytes and holds no generator for the queries.

#ifndef SRC_PROTOCOL_MESSAGES_H_
#define SRC_PROTOCOL_MESSAGES_H_

#include <algorithm>
#include <array>
#include <cassert>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/argument/verdict.h"
#include "src/crypto/elgamal.h"
#include "src/util/serialize.h"
#include "src/util/status.h"

namespace zaatar {
namespace protocol {

// Verdict diagnostics are bounded so a hostile verifier cannot make the
// prover allocate unbounded memory for an error string.
inline constexpr uint32_t kMaxVerdictDetailBytes = 4096;

// V -> P, once per (computation, batch).
template <typename F>
struct SetupMessage {
  using EG = ElGamal<F>;
  using Zp = typename EG::Zp;

  struct Oracle {
    std::vector<typename EG::Ciphertext> enc_r;
    std::vector<std::vector<F>> queries;  // each row enc_r.size() long
    std::vector<F> t;                     // enc_r.size() long
  };

  typename EG::PublicKey pk;  // only g and h travel; tables are rebuilt local
  std::array<Oracle, 2> oracles;

  std::vector<uint8_t> Serialize() const {
    ByteWriter w;
    PutField(&w, pk.g);
    PutField(&w, pk.h);
    for (size_t o = 0; o < 2; o++) {
      const Oracle& oracle = oracles[o];
      w.PutU32(static_cast<uint32_t>(oracle.enc_r.size()));
      for (const auto& ct : oracle.enc_r) {
        PutField(&w, ct.c1);
        PutField(&w, ct.c2);
      }
      w.PutU32(static_cast<uint32_t>(oracle.queries.size()));
      for (const auto& q : oracle.queries) {
        assert(q.size() == oracle.enc_r.size());
        for (const F& x : q) {
          PutField(&w, x);
        }
      }
      for (const F& x : oracle.t) {
        PutField(&w, x);
      }
    }
    return w.bytes();
  }

  static StatusOr<SetupMessage> Deserialize(
      const std::vector<uint8_t>& bytes) {
    SetupMessage msg;
    ByteReader r(bytes);
    ZAATAR_ASSIGN_OR_RETURN(msg.pk.g, GetField<Zp>(&r));
    ZAATAR_ASSIGN_OR_RETURN(msg.pk.h, GetField<Zp>(&r));
    for (size_t o = 0; o < 2; o++) {
      Oracle& oracle = msg.oracles[o];
      // Each ciphertext is two canonical Zp elements.
      ZAATAR_ASSIGN_OR_RETURN(uint32_t n, r.GetLength(2 * Zp::kLimbs * 8));
      oracle.enc_r.reserve(n);
      for (uint32_t i = 0; i < n; i++) {
        typename EG::Ciphertext ct;
        ZAATAR_ASSIGN_OR_RETURN(ct.c1, GetField<Zp>(&r));
        ZAATAR_ASSIGN_OR_RETURN(ct.c2, GetField<Zp>(&r));
        oracle.enc_r.push_back(ct);
      }
      // Query rows are implicitly n elements each; the row count is length-
      // checked against the full row size so a hostile count fails before
      // any allocation proportional to it.
      ZAATAR_ASSIGN_OR_RETURN(
          uint32_t num_q,
          r.GetLength(static_cast<size_t>(n) * F::kLimbs * 8));
      oracle.queries.reserve(num_q);
      for (uint32_t i = 0; i < num_q; i++) {
        std::vector<F> q;
        q.reserve(n);
        for (uint32_t j = 0; j < n; j++) {
          ZAATAR_ASSIGN_OR_RETURN(F x, GetField<F>(&r));
          q.push_back(x);
        }
        oracle.queries.push_back(std::move(q));
      }
      oracle.t.reserve(n);
      for (uint32_t j = 0; j < n; j++) {
        ZAATAR_ASSIGN_OR_RETURN(F x, GetField<F>(&r));
        oracle.t.push_back(x);
      }
    }
    ZAATAR_RETURN_IF_ERROR(r.ExpectEnd());
    return msg;
  }
};

// P -> V, once per instance.
template <typename F>
struct ProofMessage {
  using EG = ElGamal<F>;
  using Zp = typename EG::Zp;

  uint32_t instance_index = 0;
  std::array<typename EG::Ciphertext, 2> commitments;
  std::array<std::vector<F>, 2> responses;
  std::array<F, 2> t_responses;

  std::vector<uint8_t> Serialize() const {
    ByteWriter w;
    w.PutU32(instance_index);
    for (size_t o = 0; o < 2; o++) {
      PutField(&w, commitments[o].c1);
      PutField(&w, commitments[o].c2);
      PutFieldVector(&w, responses[o]);
      PutField(&w, t_responses[o]);
    }
    return w.bytes();
  }

  static StatusOr<ProofMessage> Deserialize(
      const std::vector<uint8_t>& bytes) {
    ProofMessage msg;
    ByteReader r(bytes);
    ZAATAR_ASSIGN_OR_RETURN(msg.instance_index, r.GetU32());
    for (size_t o = 0; o < 2; o++) {
      ZAATAR_ASSIGN_OR_RETURN(msg.commitments[o].c1, GetField<Zp>(&r));
      ZAATAR_ASSIGN_OR_RETURN(msg.commitments[o].c2, GetField<Zp>(&r));
      ZAATAR_ASSIGN_OR_RETURN(msg.responses[o], GetFieldVector<F>(&r));
      ZAATAR_ASSIGN_OR_RETURN(msg.t_responses[o], GetField<F>(&r));
    }
    ZAATAR_RETURN_IF_ERROR(r.ExpectEnd());
    return msg;
  }
};

// V -> P, once per instance: the typed verdict for `instance_index`.
struct VerdictMessage {
  uint32_t instance_index = 0;
  VerifyVerdict verdict = VerifyVerdict::kMalformed;
  std::string detail;

  static VerdictMessage FromResult(uint32_t index,
                                   const VerifyInstanceResult& result) {
    VerdictMessage msg;
    msg.instance_index = index;
    msg.verdict = result.verdict;
    msg.detail = result.detail.substr(
        0, std::min<size_t>(result.detail.size(), kMaxVerdictDetailBytes));
    return msg;
  }

  VerifyInstanceResult ToResult() const { return {verdict, detail}; }

  std::vector<uint8_t> Serialize() const {
    ByteWriter w;
    w.PutU32(instance_index);
    uint8_t v = static_cast<uint8_t>(verdict);
    w.PutBytes(&v, 1);
    w.PutU32(static_cast<uint32_t>(detail.size()));
    w.PutBytes(reinterpret_cast<const uint8_t*>(detail.data()),
               detail.size());
    return w.bytes();
  }

  static StatusOr<VerdictMessage> Deserialize(
      const std::vector<uint8_t>& bytes) {
    VerdictMessage msg;
    ByteReader r(bytes);
    ZAATAR_ASSIGN_OR_RETURN(msg.instance_index, r.GetU32());
    uint8_t v = 0;
    ZAATAR_RETURN_IF_ERROR(r.GetBytes(&v, 1));
    if (v >= kNumVerifyVerdicts) {
      return OutOfRangeError("verdict value out of range");
    }
    msg.verdict = static_cast<VerifyVerdict>(v);
    ZAATAR_ASSIGN_OR_RETURN(uint32_t len,
                            r.GetLength(1, kMaxVerdictDetailBytes));
    msg.detail.resize(len);
    ZAATAR_RETURN_IF_ERROR(
        r.GetBytes(reinterpret_cast<uint8_t*>(msg.detail.data()), len));
    ZAATAR_RETURN_IF_ERROR(r.ExpectEnd());
    return msg;
  }
};

}  // namespace protocol
}  // namespace zaatar

#endif  // SRC_PROTOCOL_MESSAGES_H_
